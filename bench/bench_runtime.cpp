// Runtime scaling experiment (paper §1.2): the exact greedy costs
// ~O(n^2 log n) in metric spaces even with the cached implementation
// [BCF+10], while Algorithm Approximate-Greedy runs in O(n log n) [GLN02].
//
// We time three implementations on the same instances and fit exponents:
//   naive greedy        -- one limited Dijkstra per pair;
//   FG-cached greedy    -- the [BCF+10]-style practical variant;
//   approximate-greedy  -- Theorem 6's algorithm.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "greedy_kernel_bench.hpp"
#include "api/candidate_source.hpp"
#include "api/registry.hpp"
#include "api/session.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "util/dary_heap.hpp"
#include "util/fit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Replay a Dijkstra-frontier-shaped op sequence (bursts of pushes with
/// drifting keys, interleaved pops -- the kernel's hot instruction stream)
/// on a d-ary heap; returns seconds. The same pre-generated sequence is
/// fed to every arity, so the delta is purely the heap layout.
struct HeapOp {
    double key;   ///< key to push; pop when count == 0
    int count;    ///< pushes in this burst
};

std::vector<HeapOp> make_heap_workload(std::size_t ops) {
    using namespace gsp;
    Rng rng(7);
    std::vector<HeapOp> seq;
    seq.reserve(ops);
    double frontier = 1.0;
    std::size_t live = 0;
    for (std::size_t i = 0; i < ops; ++i) {
        // Dijkstra pops one vertex, then pushes ~deg relaxations slightly
        // above the current frontier key.
        if (live > 0 && (live > 4096 || rng.chance(0.45))) {
            seq.push_back({0.0, 0});
            --live;
            frontier += 1e-4;
        } else {
            const int burst = static_cast<int>(rng.uniform_int(1, 4));
            seq.push_back({frontier + rng.uniform(0.0, 1.0), burst});
            live += static_cast<std::size_t>(burst);
        }
    }
    return seq;
}

struct ReplayItem {
    double key;
    std::uint32_t v;
    friend bool operator>(const ReplayItem& a, const ReplayItem& b) {
        return a.key > b.key;
    }
};

template <std::size_t Arity>
double time_heap_replay(const std::vector<HeapOp>& seq) {
    using namespace gsp;
    DaryHeap<ReplayItem, Arity> heap;
    double sink = 0.0;
    const Timer timer;
    std::uint32_t id = 0;
    for (const HeapOp& op : seq) {
        if (op.count == 0) {
            if (!heap.empty()) sink += heap.pop_min().key;
        } else {
            for (int k = 0; k < op.count; ++k) heap.push({op.key + 1e-6 * k, id++});
        }
    }
    while (!heap.empty()) sink += heap.pop_min().key;
    const double seconds = timer.seconds();
    if (sink < 0.0) std::cout << "";  // keep the replay observable
    return seconds;
}

/// The ROADMAP's d-ary heap item: the binary std::push_heap/pop_heap pair
/// was the hot loop of every query; DijkstraWorkspace now runs the 4-ary
/// layout. Show the data-structure-level delta on a replayed workload.
void heap_arity_section() {
    const auto seq = make_heap_workload(1u << 21);
    gsp::Table table({"heap", "seconds", "speedup vs 2-ary"});
    const double s2 = time_heap_replay<2>(seq);
    const double s4 = time_heap_replay<4>(seq);
    const double s8 = time_heap_replay<8>(seq);
    table.add_row({"2-ary (pre-PR2 layout)", gsp::fmt(s2, 3), gsp::fmt_ratio(1.0)});
    table.add_row({"4-ary (DijkstraWorkspace)", gsp::fmt(s4, 3), gsp::fmt_ratio(s2 / s4)});
    table.add_row({"8-ary", gsp::fmt(s8, 3), gsp::fmt_ratio(s2 / s8)});
    std::cout << "== Heap arity: replayed kernel frontier workload (2^21 ops) ==\n";
    table.print(std::cout);
    std::cout << "\n";
}

/// Graph-kernel ablation on the stock instance (n = 2^13, m = 16n, t = 2):
/// every GreedyEngine configuration against the naive kernel, edge sets
/// verified in-benchmark, timings dumped to BENCH_greedy.json so the perf
/// trajectory is tracked from this PR onward.
void graph_kernel_section() {
    using namespace gsp;
    const std::size_t n = 1u << 13;
    const std::size_t m = 16 * n;
    const double t = 2.0;
    Rng rng(42);
    const Graph g = random_graph_nm(n, m, {.lo = 1.0, .hi = 2.0}, rng);
    std::cout << "== Graph-kernel ablation: GreedyEngine configurations ==\n"
              << "instance: " << g.summary() << ", t = " << t << "\n\n";

    const auto runs = benchutil::run_kernel_sweep(g, t);
    Table table({"config", "threads", "seconds", "speedup", "|H|", "queries", "balls",
                 "cache hits", "sketch hits", "snap accepts", "same edges"});
    const double naive_s = runs.front().seconds;
    double full_s = 0.0;
    double mt4_s = 0.0;
    for (const auto& r : runs) {
        if (std::strcmp(r.config.name, "full") == 0) full_s = r.seconds;
        if (std::strcmp(r.config.name, "full+mt4") == 0) mt4_s = r.seconds;
        table.add_row({r.config.name, std::to_string(r.config.threads), fmt(r.seconds, 3),
                       fmt_ratio(naive_s / r.seconds), std::to_string(r.edges),
                       std::to_string(r.stats.dijkstra_runs),
                       std::to_string(r.stats.balls_computed),
                       std::to_string(r.stats.cache_hits),
                       std::to_string(r.stats.sketch_hits),
                       std::to_string(r.stats.snapshot_accepts),
                       r.matches_naive ? "yes" : "NO"});
    }
    table.print(std::cout);

    bool all_match = true;
    for (const auto& r : runs) all_match = all_match && r.matches_naive;
    std::cout << "\nfull-engine speedup over naive: " << fmt_ratio(naive_s / full_s)
              << "\nparallel (4 workers) speedup over serial full engine: "
              << fmt_ratio(full_s / mt4_s) << " on "
              << std::thread::hardware_concurrency() << " hardware thread(s)"
              << (all_match ? " (all edge sets verified identical)"
                            : " (EDGE SET MISMATCH -- engine bug!)")
              << "\n";

    // Metric-workload probe (n = 2^10, m = n^2/2 candidates): the regime
    // where the stage-2/stage-3 handoff dominates memory traffic. Tracked
    // in the artifact so bench/history/ shows the bytes-per-candidate
    // trajectory next to the kernel-time trajectory.
    const auto probe = benchutil::run_metric_probe(1u << 10, 1.5);
    std::cout << "\n== Metric-workload probe (handoff memory) ==\n";
    Table mtable({"metric", "value"});
    mtable.add_row({"points n", std::to_string(probe.n)});
    mtable.add_row({"candidates m", std::to_string(probe.candidates)});
    mtable.add_row({"cached engine (s, serial)", fmt(probe.serial_seconds, 3)});
    mtable.add_row({"cached engine (s, mt2)", fmt(probe.mt2_seconds, 3)});
    mtable.add_row({"handoff peak bytes", std::to_string(probe.handoff_bytes)});
    mtable.add_row({"bytes per candidate", fmt(probe.bytes_per_candidate, 4)});
    mtable.add_row({"PR-2 handoff (bytes/cand)", fmt(probe.pr2_bytes_per_candidate, 1)});
    mtable.add_row({"sketch cross-bucket hits", std::to_string(probe.stats.sketch_hits)});
    mtable.add_row({"mt2 edge set == serial", probe.matches_serial ? "yes" : "NO"});
    mtable.print(std::cout);

    // Accept-heavy probe (clustered-euclidean, accept rate > 30%): the
    // regime PR 2/PR 3 serialized outright. The two-phase accept path
    // keeps stage 2 on and resolves tentative accepts by certificate
    // repair; repairs vs full-query fallbacks are the tracked columns.
    const auto accept_probe = benchutil::run_accept_probe(1u << 10, 1.5);
    std::cout << "\n== Accept-heavy probe (speculative two-phase accept path) ==\n";
    Table atable({"metric", "value"});
    atable.add_row({"instance", "clustered_geometric n=" + std::to_string(accept_probe.n) +
                                    ", m=" + std::to_string(accept_probe.m)});
    atable.add_row({"accept rate |H|/m", fmt(accept_probe.accept_rate, 3)});
    atable.add_row({"serial (s)", fmt(accept_probe.serial_seconds, 4)});
    atable.add_row({"mt2 (s)", fmt(accept_probe.mt2_seconds, 4)});
    atable.add_row({"snapshot accepts", std::to_string(accept_probe.snapshot_accepts)});
    atable.add_row({"certificate repairs", std::to_string(accept_probe.repairs)});
    atable.add_row({"  of which reprobed", std::to_string(accept_probe.repair_reprobes)});
    atable.add_row({"full-query fallbacks", std::to_string(accept_probe.repair_fallbacks)});
    atable.add_row({"certs published / aborts",
                    std::to_string(accept_probe.certs_published) + " / " +
                        std::to_string(accept_probe.cert_ball_aborts)});
    atable.add_row({"repair share (target >= 0.7)", fmt(accept_probe.repair_share, 3)});
    atable.add_row({"mt2 edge set == serial", accept_probe.matches_serial ? "yes" : "NO"});
    atable.print(std::cout);

    // Session-reuse probe: the request-serving path. One warm session vs a
    // fresh session per call; warm calls must construct zero thread pools
    // and zero workspaces (the v4 acceptance criterion).
    const auto session_probe = benchutil::run_session_probe(1u << 10, 2.0, 2, 6);
    std::cout << "\n== Session-reuse probe (warm SpannerSession vs cold per-call) ==\n";
    Table stable({"metric", "value"});
    stable.add_row({"instance", "random_nm n=" + std::to_string(session_probe.n) +
                                    ", m=" + std::to_string(session_probe.m) +
                                    ", threads=" + std::to_string(session_probe.threads)});
    stable.add_row({"builds per arm", std::to_string(session_probe.builds)});
    stable.add_row({"cold seconds (fresh session each)",
                    fmt(session_probe.cold_seconds, 4)});
    stable.add_row({"warm seconds (one session)", fmt(session_probe.warm_seconds, 4)});
    stable.add_row({"cold setup seconds", fmt(session_probe.cold_setup_seconds, 5)});
    stable.add_row({"warm setup seconds", fmt(session_probe.warm_setup_seconds, 5)});
    stable.add_row({"cold pool / workspace constructions",
                    std::to_string(session_probe.cold_pool_constructions) + " / " +
                        std::to_string(session_probe.cold_workspace_constructions)});
    stable.add_row({"warm pool / workspace constructions (target 0 / 0)",
                    std::to_string(session_probe.warm_pool_constructions) + " / " +
                        std::to_string(session_probe.warm_workspace_constructions)});
    stable.add_row({"warm edge sets == cold", session_probe.matches ? "yes" : "NO"});
    stable.print(std::cout);

    // The v5 linear-space probe: a t = 2 spanner over the grid-pruned
    // streaming candidate source at n = 10^6 (GSP_MEM_PROBE_N overrides;
    // CI's per-PR smoke runs 10^5 through bench_micro). ~100n candidates
    // are streamed one weight window at a time -- materialized they would
    // cost ~100n * 16 B = ~1.6 GiB at 10^6 -- so the probe's RSS delta
    // must stay inside the fixed linear budget the validator enforces.
    const auto mem_probe =
        benchutil::run_mem_probe(benchutil::mem_probe_n(1'000'000));
    std::cout << "\n== Memory probe (chunked greedy over the grid stream, n="
              << mem_probe.n << ", t=" << mem_probe.stretch << ", s="
              << mem_probe.separation << ") ==\n";
    Table memtable({"instance", "gen (s)", "build (s)", "|H|", "candidates",
                    "buffer peak (KiB)", "rss delta (KiB)"});
    for (const auto& inst : mem_probe.instances) {
        memtable.add_row({inst.kind, fmt(inst.gen_seconds, 2),
                          fmt(inst.build_seconds, 2), std::to_string(inst.edges),
                          std::to_string(inst.candidates_streamed),
                          std::to_string(inst.candidate_buffer_peak_bytes / 1024),
                          std::to_string(inst.rss_after_kb - inst.rss_before_kb)});
    }
    memtable.print(std::cout);
    std::cout << "rss budget " << mem_probe.rss_budget_kb << " KiB: "
              << (mem_probe.within_budget ? "within budget" : "OVER BUDGET")
              << "\n";

    // The v6 wall-clock probe: the same grid-streamed shape timed with the
    // cell-batched rejection path on (GSP_TIME_PROBE_N overrides; CI's
    // per-PR smoke runs 10^5 through bench_micro, the history job on main
    // runs the full 10^6 and asserts the 15-minute single-core ceiling).
    const auto time_probe =
        benchutil::run_time_probe(benchutil::time_probe_n(1'000'000));
    std::cout << "\n== Time probe (cell-batched greedy over the grid stream, n="
              << time_probe.n << ", t=" << time_probe.stretch << ", s="
              << time_probe.separation << ") ==\n";
    Table ttable({"gen (s)", "grid (s)", "build (s)", "|H|", "candidates",
                  "us/candidate", "cell balls", "cell-ball share",
                  "coarse rejects"});
    ttable.add_row({fmt(time_probe.gen_seconds, 2), fmt(time_probe.grid_seconds, 2),
                    fmt(time_probe.build_seconds, 2), std::to_string(time_probe.edges),
                    std::to_string(time_probe.candidates),
                    fmt(time_probe.us_per_candidate, 2),
                    std::to_string(time_probe.cell_balls),
                    fmt(time_probe.cell_ball_share, 3),
                    std::to_string(time_probe.coarse_rejects)});
    ttable.print(std::cout);

    // The v7 group-probe ablation: kOff (per-candidate, the PR-7
    // baseline) vs kOn (one batched traversal per source group) on the
    // metric all-pairs and graph shapes, serial, warm session
    // (GSP_GROUP_PROBE_N overrides the metric arm's point count; CI's
    // per-PR smoke runs the reduced shape through bench_micro).
    const auto group_probe = benchutil::run_group_probe(
        benchutil::group_probe_n(1u << 10), 1.5, 1u << 12, 2.0);
    std::cout << "\n== Group-probe ablation (multi-target kernel vs per-candidate) ==\n";
    Table gtable({"arm", "n", "candidates", "off us/cand", "on us/cand", "speedup",
                  "mean group", "early-exit share", "same edges"});
    for (const auto* arm : {&group_probe.metric, &group_probe.graph}) {
        gtable.add_row({arm->kind, std::to_string(arm->n),
                        std::to_string(arm->candidates),
                        fmt(arm->off_us_per_candidate, 2),
                        fmt(arm->on_us_per_candidate, 2), fmt_ratio(arm->speedup),
                        fmt(arm->mean_group_size, 1), fmt(arm->early_exit_share, 3),
                        arm->matches_off ? "yes" : "NO"});
    }
    gtable.print(std::cout);

    // The v8 SIMD kernel ablation: scalar vs dispatch-selected vector
    // table on identical inputs, outputs asserted identical before any
    // timing is recorded (the radix row times the LSD sorter against
    // std::stable_sort).
    const auto simd_probe = benchutil::run_simd_probe();
    std::cout << "\n== SIMD kernel ablation: scalar vs dispatched ("
              << simd_probe.backend << ") ==\n";
    Table simdtable({"kernel", "scalar (s)", "simd (s)", "speedup", "outputs"});
    const auto simd_row = [&](const char* name,
                              const benchutil::SimdKernelAblation& a) {
        simdtable.add_row({name, fmt(a.scalar_seconds, 4), fmt(a.simd_seconds, 4),
                           fmt_ratio(a.speedup),
                           a.outputs_identical ? "identical" : "MISMATCHED"});
    };
    simd_row("far_sweep", simd_probe.far_sweep);
    simd_row("distance_batch", simd_probe.distance_batch);
    simd_row("sketch_probe", simd_probe.sketch_probe);
    simd_row("radix_sort (vs stable_sort)", simd_probe.radix_sort);
    simdtable.print(std::cout);

    const std::string path = benchutil::bench_json_path();
    benchutil::write_bench_greedy_json(path, "bench_runtime", "random_nm", n,
                                       g.num_edges(), t, runs, mem_probe, time_probe,
                                       group_probe, &session_probe, &probe,
                                       &accept_probe, &simd_probe);
    std::cout << "wrote " << path << "\n\n";

    // Parallel-stage scaling probe at t = 3: the reject-heavy regime
    // (ROADMAP's ball-gate probe), where most candidates die in stage 2's
    // read-only prefilter and the worker pool has real work to absorb. The
    // t = 2 ablation above is accept-heavy (~89% of candidates inserted),
    // which serializes by nature -- kept separate so the tracked artifact
    // stays comparable across PRs.
    const double t3 = 3.0;
    std::cout << "== Parallel prefilter scaling (same instance, t = " << t3
              << ", reject-heavy) ==\n";
    Table scale({"config", "threads", "seconds", "speedup vs serial", "snap accepts",
                 "same edges"});
    Graph reference(0);
    double serial_s = 0.0;
    SpannerSession scale_session;  // warm across the whole sweep
    GraphCandidateSource scale_source(g);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        BuildOptions options;
        options.stretch = t3;
        options.engine.num_threads = threads;
        BuildReport report;
        const Graph h = scale_session.build(scale_source, options, &report);
        if (threads == 1) {
            reference = h;
            serial_s = report.seconds;
        }
        scale.add_row({threads == 1 ? "full (serial)" : ("full+mt" + std::to_string(threads)),
                       std::to_string(threads), fmt(report.seconds, 3),
                       fmt_ratio(serial_s / report.seconds),
                       std::to_string(report.stats.snapshot_accepts),
                       same_edge_set(h, reference) ? "yes" : "NO"});
    }
    scale.print(std::cout);
    std::cout << "(workers beyond " << std::thread::hardware_concurrency()
              << " hardware thread(s) cannot speed this host up)\n\n";
}

/// Every registry entry built through one warm SpannerSession over shared
/// instances -- the uniform enumeration the unified API exists for.
void registry_section() {
    using namespace gsp;
    const std::size_t n = 256;
    Rng rng(11);
    const Graph g = random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
    const EuclideanMetric pts =
        uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 2.0;

    std::cout << "== Algorithm registry (one warm session, n = " << n << ") ==\n";
    Table table({"algorithm", "input", "seconds", "|H|", "weight", "max deg",
                 "stretch target"});
    const AlgorithmRegistry& registry = AlgorithmRegistry::global();
    for (const AlgorithmInfo* info : registry.algorithms()) {
        const BuildInput input = info->input == InputKind::kGraph ? BuildInput::of(g)
                                                                  : BuildInput::of(pts);
        BuildReport report;
        (void)registry.build(info->name, session, input, options, &report);
        table.add_row({std::string(info->name), std::string(to_string(info->input)),
                       fmt(report.seconds, 3), std::to_string(report.edges),
                       fmt(report.weight, 1), std::to_string(report.max_degree),
                       fmt(report.stretch_target, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gsp;
    heap_arity_section();
    graph_kernel_section();
    // CI's history-recording job only needs the kernel artifact.
    if (argc > 1 && std::strcmp(argv[1], "--kernel-only") == 0) return 0;
    registry_section();

    const double eps = 0.5;
    std::cout << "== Runtime scaling: exact greedy vs approximate-greedy (eps = " << eps
              << ") ==\n\n";

    // Each implementation sweeps as far as its asymptotics allow in a few
    // seconds of wall clock: the naive loop is already ~n^3-ish, the cached
    // one ~n^2 log n, the approximate one ~n log n.
    Table table({"n", "naive greedy (s)", "FG-cached greedy (s)", "approx-greedy (s)",
                 "|H| cached", "|H| approx"});
    std::vector<double> n_naive, naive_s, n_cached, cached_s, n_approx, approx_s;
    for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
        Rng rng(3 * n);
        const double extent = std::sqrt(static_cast<double>(n)) * 10.0;
        const EuclideanMetric pts = uniform_points(n, 2, extent, rng);

        SpannerSession session;  // one session per instance: all three share arenas
        MetricCandidateSource pair_source(pts);

        std::string naive_cell = "-";
        if (n <= 512) {
            BuildOptions naive_options;
            naive_options.stretch = 1.0 + eps;
            naive_options.engine = EngineTuning::naive();
            BuildReport naive_report;
            (void)session.build(pair_source, naive_options, &naive_report);
            n_naive.push_back(static_cast<double>(n));
            naive_s.push_back(naive_report.seconds);
            naive_cell = fmt(naive_report.seconds, 3);
        }

        std::string cached_cell = "-";
        std::string cached_size = "-";
        if (n <= 2048) {
            BuildOptions cached_options;
            cached_options.stretch = 1.0 + eps;
            BuildReport cached_report;
            const Graph cached = session.build(pair_source, cached_options, &cached_report);
            n_cached.push_back(static_cast<double>(n));
            cached_s.push_back(cached_report.seconds);
            cached_cell = fmt(cached_report.seconds, 3);
            cached_size = std::to_string(cached.num_edges());
        }

        BuildOptions approx_options;
        approx_options.approx.epsilon = eps;
        approx_options.approx.theta_cones_override = 16;
        const ApproxGreedyResult approx =
            approx_greedy_build(session, pts, approx_options);
        n_approx.push_back(static_cast<double>(n));
        approx_s.push_back(approx.seconds_total);

        table.add_row({std::to_string(n), naive_cell, cached_cell,
                       fmt(approx.seconds_total, 3), cached_size,
                       std::to_string(approx.spanner.num_edges())});
    }
    table.print(std::cout);

    std::cout << "\nfitted exponents: naive ~ n^"
              << fmt(fit_power_law(n_naive, naive_s).exponent, 2) << ", FG-cached ~ n^"
              << fmt(fit_power_law(n_cached, cached_s).exponent, 2) << ", approx ~ n^"
              << fmt(fit_power_law(n_approx, approx_s).exponent, 2)
              << "\npaper expectation: the naive pair loop is super-quadratic; the "
                 "FG-cached variant is the\n~O(n^2 log n) state of the art the paper cites "
                 "as [BCF+10]; approximate-greedy is\nnear-linear (O(n log n), "
                 "[GLN02]/Theorem 6). Cached |H| equals the naive |H| by construction\n"
                 "(identical algorithm; equality is asserted in the test suite).\n";
    return 0;
}
