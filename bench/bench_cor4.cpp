// Corollary 4 experiment: the greedy (2k-1)(1+eps)-spanner of a general
// weighted graph has O(n^{1+1/k}) edges and lightness O(n^{1/k} / eps^{...}).
//
// The paper transfers these bounds from [CW16] via Theorem 4 without
// touching the greedy algorithm; here we *measure* the greedy on dense
// random graphs and fit the growth exponents, expecting
//   slope(|H| vs n)       <= 1 + 1/k   (plus noise)
//   slope(lightness vs n) <= 1/k
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/audit.hpp"
#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "util/fit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    const double eps = 0.1;
    std::cout << "== Corollary 4: greedy size/lightness on general graphs ==\n"
              << "G(n, m = 8 n^{1.5}) with U[1,2] weights; t = (2k-1)(1+" << eps
              << ")\n\n";

    Table table({"k", "t", "n", "m", "|H|", "|H|/n^{1+1/k}", "lightness",
                 "lightness/n^{1/k}"});
    for (unsigned k : {2u, 3u}) {
        const double t = (2.0 * k - 1.0) * (1.0 + eps);
        std::vector<double> ns, sizes, lights;
        for (std::size_t n : {128u, 256u, 512u, 1024u}) {
            Rng rng(31 * n + k);
            const auto m =
                static_cast<std::size_t>(8.0 * std::pow(static_cast<double>(n), 1.5));
            const Graph g = random_graph_nm(n, m, {.lo = 1.0, .hi = 2.0}, rng);
            const Graph h = greedy_spanner(g, t);
            const SpannerAudit a = audit_graph_spanner(g, h);
            const double n_d = static_cast<double>(n);
            ns.push_back(n_d);
            sizes.push_back(static_cast<double>(a.edges));
            lights.push_back(a.lightness);
            table.add_row({std::to_string(k), fmt(t, 2), std::to_string(n),
                           std::to_string(g.num_edges()), std::to_string(a.edges),
                           fmt(static_cast<double>(a.edges) /
                               std::pow(n_d, 1.0 + 1.0 / k)),
                           fmt(a.lightness),
                           fmt(a.lightness / std::pow(n_d, 1.0 / k))});
        }
        const PowerFit size_fit = fit_power_law(ns, sizes);
        const PowerFit light_fit = fit_power_law(ns, lights);
        std::cout << "k=" << k << ": fitted |H| ~ n^" << fmt(size_fit.exponent, 2)
                  << " (bound 1+1/k = " << fmt(1.0 + 1.0 / k, 2) << ", R^2 "
                  << fmt(size_fit.r_squared, 3) << ");  lightness ~ n^"
                  << fmt(light_fit.exponent, 2) << " (bound 1/k = " << fmt(1.0 / k, 2)
                  << ")\n";
    }
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "\nPaper expectation: both normalized columns stay bounded as n grows "
                 "(the greedy inherits\n[CW16]'s guarantees by Theorem 4); fitted "
                 "exponents must not exceed the bounds.\n";
    return 0;
}
