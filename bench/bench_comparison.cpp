// The [FG05/Far08] comparison the paper cites in §1.2: "the greedy spanner
// was found to be 10 times sparser and 30 times lighter than any other
// examined spanner."
//
// We regenerate the experiment: uniform 2D points; the greedy against the
// classic baselines (theta graph, Yao graph, WSPD spanner, Baswana-Sen on
// the metric completion). Absolute factors depend on the stretch matched;
// the shape to reproduce is greedy winning *both* size and lightness by a
// wide margin at comparable measured stretch.
#include <iostream>

#include "analysis/audit.hpp"
#include "core/greedy_metric.hpp"
#include "gen/points.hpp"
#include "metric/metric_space.hpp"
#include "spanners/baswana_sen.hpp"
#include "spanners/theta_graph.hpp"
#include "spanners/wspd_spanner.hpp"
#include "spanners/yao_graph.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    const std::size_t n = 1024;
    Rng rng(4242);
    const EuclideanMetric pts = uniform_points(n, 2, 1000.0, rng);
    const double t = 2.0;  // the experiments' usual headline stretch

    std::cout << "== [FG05]-style comparison, n = " << n
              << " uniform 2D points, target stretch t = " << fmt(t) << " ==\n\n";

    const Graph greedy = greedy_spanner_metric(pts, t);
    const SpannerAudit base = audit_metric_spanner(pts, greedy);

    Table table({"construction", "edges", "vs greedy", "lightness", "vs greedy",
                 "max deg", "measured stretch"});
    auto add = [&](const std::string& name, const Graph& h) {
        const SpannerAudit a = audit_metric_spanner(pts, h);
        table.add_row({name, std::to_string(a.edges),
                       fmt_ratio(static_cast<double>(a.edges) /
                                 static_cast<double>(base.edges)),
                       fmt(a.lightness, 2), fmt_ratio(a.lightness / base.lightness),
                       std::to_string(a.max_degree), fmt(a.max_stretch, 3)});
    };

    add("greedy t=2", greedy);
    // A low-stretch greedy row for like-for-like reading: the cone/WSPD
    // baselines' *measured* stretch lands near 1.25, so compare them against
    // the greedy at that stretch class too.
    add("greedy t=1.25", greedy_spanner_metric(pts, 1.25));
    add("theta graph (12 cones)", theta_graph(pts, 12));
    add("theta graph (16 cones)", theta_graph(pts, 16));
    add("yao graph (12 cones)", yao_graph(pts, 12));
    add("WSPD spanner (eps=1)", wspd_spanner(pts, 1.0));
    {
        // Baswana-Sen needs a graph; feed it the metric completion. k = 2
        // targets stretch 3 -- the closest odd-stretch class to t = 2.
        const Graph complete = complete_graph(pts);
        add("Baswana-Sen k=2 (on completion)", baswana_sen_spanner(complete, 2, 7));
    }

    table.print(std::cout);
    std::cout << "\nPaper expectation ([FG05] as cited in §1.2): the greedy dominates "
                 "every baseline on BOTH\nsize and lightness -- the cited factors are "
                 "~10x (size) and ~30x (weight) against cone/WSPD\nconstructions at "
                 "comparable stretch. Exact multiples vary with n, eps and the dimension.\n";
    return 0;
}
