// Shared harness for the greedy-kernel configuration sweep and the
// machine-readable BENCH_greedy.json artifact.
//
// Both bench_runtime (full-size sweep, the perf-trajectory source of truth)
// and bench_micro (CI smoke that validates the schema) emit the same JSON
// shape, version-tagged "gsp.bench_greedy.v4", built on the library's
// shared JsonWriter + append_greedy_stats serializer (src/api/build_report)
// instead of hand-rolled streams:
//
//   {
//     "schema": "gsp.bench_greedy.v4",
//     "source": "<bench binary>",
//     "stretch": <t>,
//     "instance": {"kind": ..., "n": ..., "m": ...},
//     "configs": [
//       {"name": ..., "bidirectional": ..., "ball_sharing": ...,
//        "csr_snapshot": ..., "bound_sketch": ..., "seconds": ...,
//        "edges": ..., "matches_naive": ..., "handoff_bytes": ...,
//        "bytes_per_candidate": ..., "stats": {...}}, ...],
//     "metric_probe": {...},        // bench_runtime only (optional)
//     "accept_probe": {...},        // bench_runtime only (optional)
//     "session_probe": {...},       // the session-reuse probe (v4)
//     "peak_rss_kb": <ru_maxrss>,
//     "speedup_full_vs_naive": <naive seconds / full seconds>
//   }
//
// v2 added the memory trajectory (handoff bytes-per-candidate, peak RSS,
// the metric-workload probe); v3 the speculative-accept counters and the
// accept-heavy probe. v4 (the unified API) adds the session-reuse probe:
// the same instance built repeatedly through one SpannerSession vs a fresh
// session per call, with the per-call thread-pool / workspace construction
// counters -- warm calls must report zero of each (enforced by
// scripts/validate_bench_json.py), certifying the warm-start contract of
// the request-serving path.
//
// The output path defaults to BENCH_greedy.json in the working directory;
// override with the GSP_BENCH_JSON environment variable.
// scripts/validate_bench_json.py checks the schema in CI.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "api/build_report.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace gsp::benchutil {

struct KernelConfig {
    const char* name;
    bool bidirectional;
    bool ball_sharing;
    bool csr_snapshot;
    bool bound_sketch = false;
    std::size_t threads = 1;  ///< stage-2 workers (1 = serial pipeline)
};

/// The ablation ladder: the naive reference, each optimisation alone, the
/// full serial engine, and the full engine with the parallel prefilter
/// stage at increasing worker counts. kKernelConfigs[0] must stay the
/// naive kernel -- the sweep verifies every other row against its edge
/// set. "full" stays the serial pipeline so the mt rows read as speedup
/// over the serial engine; from PR 3 on, "full" includes the cross-bucket
/// bound sketch.
inline constexpr KernelConfig kKernelConfigs[] = {
    {"naive", false, false, false},
    {"bidirectional", true, false, false},
    {"ball_sharing", false, true, false},
    {"csr_snapshot", false, false, true},
    {"bound_sketch", false, false, false, true},
    {"bidirectional+csr", true, false, true},
    {"full", true, true, true, true},
    {"full+mt2", true, true, true, true, 2},
    {"full+mt4", true, true, true, true, 4},
};

struct KernelRun {
    KernelConfig config;
    double seconds = 0.0;
    std::size_t edges = 0;
    bool matches_naive = false;
    GreedyStats stats;
};

inline BuildOptions options_for(const KernelConfig& config, double t) {
    BuildOptions options;
    options.stretch = t;
    options.engine.bidirectional = config.bidirectional;
    options.engine.ball_sharing = config.ball_sharing;
    options.engine.csr_snapshot = config.csr_snapshot;
    options.engine.bound_sketch = config.bound_sketch;
    options.engine.num_threads = config.threads;
    return options;
}

/// Run every kernel configuration on (g, t) and verify each edge set
/// against the naive kernel's -- the in-benchmark equivalence check the
/// acceptance criteria require. Each configuration runs in a fresh
/// session (per-call timings stay comparable across the bench history).
inline std::vector<KernelRun> run_kernel_sweep(const Graph& g, double t) {
    std::vector<KernelRun> runs;
    Graph naive_spanner(0);
    for (const KernelConfig& config : kKernelConfigs) {
        KernelRun run;
        run.config = config;
        SpannerSession session;
        GraphCandidateSource source(g);
        BuildReport report;
        const Graph h = session.build(source, options_for(config, t), &report);
        run.stats = report.stats;
        run.stats.seconds = report.seconds;
        run.seconds = report.seconds;
        run.edges = h.num_edges();
        if (runs.empty()) {
            naive_spanner = h;
            run.matches_naive = true;
        } else {
            run.matches_naive = same_edge_set(h, naive_spanner);
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

/// The metric-workload probe: n points, m = n(n-1)/2 candidates -- the
/// regime where the stage-2/stage-3 handoff dominates memory traffic and
/// the PR-2 verdict/bound arrays cost a flat 9 bytes per candidate (1-byte
/// verdict + 8-byte bound, both sized to the whole run). The artifact
/// tracks the measured bytes-per-candidate of the bucket-local handoff
/// against that baseline.
struct MetricProbeResult {
    std::size_t n = 0;
    std::size_t candidates = 0;
    double stretch = 0.0;
    double serial_seconds = 0.0;
    double mt2_seconds = 0.0;
    std::size_t edges = 0;
    bool matches_serial = false;  ///< mt2 edge set == serial edge set
    std::size_t handoff_bytes = 0;
    double bytes_per_candidate = 0.0;
    /// The PR-2 handoff layout's flat cost on the same run.
    double pr2_bytes_per_candidate = 9.0;
    /// Two-phase accept-path counters of the mt2 run.
    std::size_t repairs = 0;
    std::size_t repair_fallbacks = 0;
    GreedyStats stats;  ///< serial cached-engine run
};

inline MetricProbeResult run_metric_probe(std::size_t n, double t) {
    Rng rng(1234);
    const EuclideanMetric pts =
        uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
    MetricProbeResult probe;
    probe.n = n;
    probe.candidates = n * (n - 1) / 2;
    probe.stretch = t;

    SpannerSession session;  // one session serves both runs (the API path)
    MetricCandidateSource source(pts);
    BuildOptions options;
    options.stretch = t;

    BuildReport serial_report;
    const Graph serial = session.build(source, options, &serial_report);
    probe.stats = serial_report.stats;
    probe.stats.seconds = serial_report.seconds;
    probe.serial_seconds = serial_report.seconds;
    probe.edges = serial.num_edges();

    options.engine.num_threads = 2;
    BuildReport mt_report;
    const Graph mt = session.build(source, options, &mt_report);
    probe.mt2_seconds = mt_report.seconds;
    probe.matches_serial = same_edge_set(mt, serial);
    probe.repairs = mt_report.stats.repairs;
    probe.repair_fallbacks = mt_report.stats.repair_fallbacks;
    // The parallel handoff adds the verdict bitsets; report the larger of
    // the two runs so the column upper-bounds both paths.
    probe.handoff_bytes = std::max(serial_report.stats.handoff_peak_bytes,
                                   mt_report.stats.handoff_peak_bytes);
    probe.bytes_per_candidate =
        static_cast<double>(probe.handoff_bytes) /
        static_cast<double>(probe.candidates == 0 ? 1 : probe.candidates);
    return probe;
}

/// The accept-heavy probe of the speculative two-phase accept path: a
/// clustered-euclidean geometric graph (dense intra-cluster candidate
/// sets with near-parallel alternatives) at moderate stretch, tuned so
/// the greedy keeps > 30% of all candidates -- the regime PR 2/PR 3
/// serialized entirely. Reports how the parallel run's tentative accepts
/// resolved: still-current snapshot certificates, phase-B repairs, or
/// full-query fallbacks. The acceptance criterion is repair_share >= 0.7.
struct AcceptProbeResult {
    std::size_t n = 0;
    std::size_t m = 0;  ///< candidate edges
    double stretch = 0.0;
    double accept_rate = 0.0;  ///< |H| / m
    double serial_seconds = 0.0;
    double mt2_seconds = 0.0;
    std::size_t edges = 0;
    bool matches_serial = false;
    std::size_t snapshot_accepts = 0;
    std::size_t repairs = 0;
    std::size_t repair_reprobes = 0;
    std::size_t repair_fallbacks = 0;
    std::size_t certs_published = 0;
    std::size_t cert_ball_aborts = 0;
    /// (snapshot_accepts + repairs) / (snapshot_accepts + repairs +
    /// repair_fallbacks): the share of tentative accepts resolved without
    /// a full exact query.
    double repair_share = 0.0;
};

inline AcceptProbeResult run_accept_probe(std::size_t n, double t) {
    Rng rng(7);
    const Graph g = clustered_geometric(n, 12, 60.0, 1.0, 0.6, rng);
    AcceptProbeResult probe;
    probe.n = n;
    probe.m = g.num_edges();
    probe.stretch = t;

    SpannerSession session;
    GraphCandidateSource source(g);
    BuildOptions options;
    options.stretch = t;

    BuildReport serial_report;
    const Graph serial = session.build(source, options, &serial_report);
    probe.serial_seconds = serial_report.seconds;
    probe.edges = serial.num_edges();
    probe.accept_rate =
        static_cast<double>(serial.num_edges()) / static_cast<double>(g.num_edges());

    options.engine.num_threads = 2;
    BuildReport mt;
    const Graph parallel = session.build(source, options, &mt);
    probe.mt2_seconds = mt.seconds;
    probe.matches_serial = same_edge_set(parallel, serial);
    probe.snapshot_accepts = mt.stats.snapshot_accepts;
    probe.repairs = mt.stats.repairs;
    probe.repair_reprobes = mt.stats.repair_reprobes;
    probe.repair_fallbacks = mt.stats.repair_fallbacks;
    probe.certs_published = mt.stats.certs_published;
    probe.cert_ball_aborts = mt.stats.cert_ball_aborts;
    const double resolved = static_cast<double>(probe.snapshot_accepts + probe.repairs);
    const double tentative = resolved + static_cast<double>(probe.repair_fallbacks);
    probe.repair_share = tentative > 0.0 ? resolved / tentative : 1.0;
    return probe;
}

/// The session-reuse probe: the same parallel build run `builds` times
/// through one warm SpannerSession vs a fresh session per call. The
/// counters certify the tentpole's warm-start claim -- a warm build()
/// constructs zero thread pools and zero Dijkstra workspaces (the
/// validator enforces both at exactly 0) -- and the seconds columns show
/// the per-call setup cost eliminated.
struct SessionProbeResult {
    std::size_t n = 0;
    std::size_t m = 0;
    double stretch = 0.0;
    std::size_t threads = 0;
    std::size_t builds = 0;  ///< measured calls per arm (after the warm prime)
    double cold_seconds = 0.0;       ///< sum over fresh-session calls
    double warm_seconds = 0.0;       ///< sum over warm calls of one session
    double cold_setup_seconds = 0.0; ///< engine/pool acquisition, fresh sessions
    double warm_setup_seconds = 0.0; ///< same, warm session (should be ~0)
    std::size_t cold_pool_constructions = 0;
    std::size_t cold_workspace_constructions = 0;
    std::size_t warm_pool_constructions = 0;       ///< must be 0
    std::size_t warm_workspace_constructions = 0;  ///< must be 0
    bool matches = true;  ///< every warm edge set == the cold edge set
};

inline SessionProbeResult run_session_probe(std::size_t n, double t,
                                            std::size_t threads, std::size_t builds) {
    Rng rng(99);
    const Graph g = random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
    SessionProbeResult probe;
    probe.n = n;
    probe.m = g.num_edges();
    probe.stretch = t;
    probe.threads = threads;
    probe.builds = builds;

    BuildOptions options;
    options.stretch = t;
    options.engine.num_threads = threads;
    GraphCandidateSource source(g);

    Graph reference(0);
    for (std::size_t i = 0; i < builds; ++i) {
        SpannerSession cold;  // pays pool + workspace construction every call
        BuildReport report;
        Graph h = cold.build(source, options, &report);
        probe.cold_seconds += report.seconds;
        probe.cold_setup_seconds += report.setup_seconds;
        probe.cold_pool_constructions += report.pools_constructed;
        probe.cold_workspace_constructions += report.workspaces_constructed;
        if (i == 0) reference = std::move(h);
    }

    SpannerSession warm;
    {
        BuildReport prime;  // first call of the session pays construction once
        (void)warm.build(source, options, &prime);
    }
    for (std::size_t i = 0; i < builds; ++i) {
        BuildReport report;
        const Graph h = warm.build(source, options, &report);
        probe.warm_seconds += report.seconds;
        probe.warm_setup_seconds += report.setup_seconds;
        probe.warm_pool_constructions += report.pools_constructed;
        probe.warm_workspace_constructions += report.workspaces_constructed;
        probe.matches = probe.matches && same_edge_set(h, reference);
    }
    return probe;
}

/// Process peak RSS in KiB (0 where unsupported).
inline std::size_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::size_t>(ru.ru_maxrss) / 1024;  // bytes on macOS
#else
        return static_cast<std::size_t>(ru.ru_maxrss);  // KiB on Linux
#endif
    }
#endif
    return 0;
}

inline std::string bench_json_path() {
    const char* env = std::getenv("GSP_BENCH_JSON");
    return env != nullptr ? std::string(env) : std::string("BENCH_greedy.json");
}

inline void write_bench_greedy_json(const std::string& path, const std::string& source,
                                    const std::string& instance_kind, std::size_t n,
                                    std::size_t m, double t,
                                    const std::vector<KernelRun>& runs,
                                    const SessionProbeResult* session_probe = nullptr,
                                    const MetricProbeResult* metric_probe = nullptr,
                                    const AcceptProbeResult* accept_probe = nullptr) {
    JsonWriter w;
    w.begin_object();
    w.member("schema", "gsp.bench_greedy.v4");
    w.member("source", source);
    w.member("stretch", t);
    w.key("instance").begin_object();
    w.member("kind", instance_kind);
    w.member("n", n);
    w.member("m", m);
    w.end_object();

    w.key("configs").begin_array();
    for (const KernelRun& r : runs) {
        const double bpc = static_cast<double>(r.stats.handoff_peak_bytes) /
                           static_cast<double>(m == 0 ? 1 : m);
        w.begin_object();
        w.member("name", r.config.name);
        w.member("bidirectional", r.config.bidirectional);
        w.member("ball_sharing", r.config.ball_sharing);
        w.member("csr_snapshot", r.config.csr_snapshot);
        w.member("bound_sketch", r.config.bound_sketch);
        w.member("threads", r.config.threads);
        w.member("seconds", r.seconds);
        w.member("edges", r.edges);
        w.member("matches_naive", r.matches_naive);
        w.member("handoff_bytes", r.stats.handoff_peak_bytes);
        w.member("bytes_per_candidate", bpc);
        w.key("stats").begin_object();
        append_greedy_stats(w, r.stats);
        w.end_object();
        w.end_object();
    }
    w.end_array();

    if (metric_probe != nullptr) {
        const MetricProbeResult& p = *metric_probe;
        w.key("metric_probe").begin_object();
        w.member("kind", "euclidean_uniform");
        w.member("n", p.n);
        w.member("candidates", p.candidates);
        w.member("stretch", p.stretch);
        w.member("serial_seconds", p.serial_seconds);
        w.member("mt2_seconds", p.mt2_seconds);
        w.member("edges", p.edges);
        w.member("matches_serial", p.matches_serial);
        w.member("handoff_bytes", p.handoff_bytes);
        w.member("bytes_per_candidate", p.bytes_per_candidate);
        w.member("pr2_bytes_per_candidate", p.pr2_bytes_per_candidate);
        w.member("sketch_hits", p.stats.sketch_hits);
        w.member("repairs", p.repairs);
        w.member("repair_fallbacks", p.repair_fallbacks);
        w.member("dijkstra_runs", p.stats.dijkstra_runs);
        w.end_object();
    }
    if (accept_probe != nullptr) {
        const AcceptProbeResult& p = *accept_probe;
        w.key("accept_probe").begin_object();
        w.member("kind", "clustered_geometric");
        w.member("n", p.n);
        w.member("m", p.m);
        w.member("stretch", p.stretch);
        w.member("accept_rate", p.accept_rate);
        w.member("serial_seconds", p.serial_seconds);
        w.member("mt2_seconds", p.mt2_seconds);
        w.member("edges", p.edges);
        w.member("matches_serial", p.matches_serial);
        w.member("snapshot_accepts", p.snapshot_accepts);
        w.member("repairs", p.repairs);
        w.member("repair_reprobes", p.repair_reprobes);
        w.member("repair_fallbacks", p.repair_fallbacks);
        w.member("certs_published", p.certs_published);
        w.member("cert_ball_aborts", p.cert_ball_aborts);
        w.member("repair_share", p.repair_share);
        w.end_object();
    }
    if (session_probe != nullptr) {
        const SessionProbeResult& p = *session_probe;
        w.key("session_probe").begin_object();
        w.member("kind", "random_nm");
        w.member("n", p.n);
        w.member("m", p.m);
        w.member("stretch", p.stretch);
        w.member("threads", p.threads);
        w.member("builds", p.builds);
        w.member("cold_seconds", p.cold_seconds);
        w.member("warm_seconds", p.warm_seconds);
        w.member("cold_setup_seconds", p.cold_setup_seconds);
        w.member("warm_setup_seconds", p.warm_setup_seconds);
        w.member("cold_pool_constructions", p.cold_pool_constructions);
        w.member("cold_workspace_constructions", p.cold_workspace_constructions);
        w.member("warm_pool_constructions", p.warm_pool_constructions);
        w.member("warm_workspace_constructions", p.warm_workspace_constructions);
        w.member("matches", p.matches);
        w.end_object();
    }

    w.member("peak_rss_kb", peak_rss_kb());
    // Named lookups: the ladder may append parallel rows after "full", so
    // ratios reference configs by name rather than position.
    const auto seconds_of = [&runs](const std::string& name) -> double {
        for (const KernelRun& r : runs) {
            if (name == r.config.name) return r.seconds;
        }
        return 0.0;
    };
    const double naive_s = runs.front().seconds;
    const double full_s = seconds_of("full");
    const double mt_s = seconds_of("full+mt4");
    w.member("speedup_full_vs_naive", full_s > 0.0 ? naive_s / full_s : 0.0);
    w.member("speedup_parallel_vs_full",
             mt_s > 0.0 && full_s > 0.0 ? full_s / mt_s : 0.0);
    w.end_object();

    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << w.str() << "\n";
}

}  // namespace gsp::benchutil
