// Shared harness for the greedy-kernel configuration sweep and the
// machine-readable BENCH_greedy.json artifact.
//
// Both bench_runtime (full-size sweep, the perf-trajectory source of truth)
// and bench_micro (CI smoke that validates the schema) emit the same JSON
// shape, version-tagged "gsp.bench_greedy.v3":
//
//   {
//     "schema": "gsp.bench_greedy.v3",
//     "source": "<bench binary>",
//     "stretch": <t>,
//     "instance": {"kind": ..., "n": ..., "m": ...},
//     "configs": [
//       {"name": ..., "bidirectional": ..., "ball_sharing": ...,
//        "csr_snapshot": ..., "bound_sketch": ..., "seconds": ...,
//        "edges": ..., "matches_naive": ..., "handoff_bytes": ...,
//        "bytes_per_candidate": ..., "stats": {...}}, ...],
//     "metric_probe": {...},        // bench_runtime only (optional)
//     "accept_probe": {...},        // bench_runtime only (optional)
//     "peak_rss_kb": <ru_maxrss>,
//     "speedup_full_vs_naive": <naive seconds / full seconds>
//   }
//
// v2 added the memory trajectory next to the kernel-time trajectory: the
// per-config stage-2 -> stage-3 handoff footprint (bytes_per_candidate),
// the process peak RSS, and the metric-workload probe (n = 2^10,
// m = n(n-1)/2 candidates) where the handoff size is the dominant memory
// term. v3 (the speculative two-phase accept path) adds the repair
// counters to every config's stats block and the accept-heavy probe: a
// clustered-euclidean instance with accept rate > 30%, reporting how many
// tentative accepts resolved by certificate repair vs full-query
// fallbacks (the repair_share acceptance criterion).
//
// The output path defaults to BENCH_greedy.json in the working directory;
// override with the GSP_BENCH_JSON environment variable.
// scripts/validate_bench_json.py checks the schema in CI.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/greedy.hpp"
#include "core/greedy_engine.hpp"
#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "util/random.hpp"

namespace gsp::benchutil {

struct KernelConfig {
    const char* name;
    bool bidirectional;
    bool ball_sharing;
    bool csr_snapshot;
    bool bound_sketch = false;
    std::size_t threads = 1;  ///< stage-2 workers (1 = serial pipeline)
};

/// The ablation ladder: the naive reference, each optimisation alone, the
/// full serial engine, and the full engine with the parallel prefilter
/// stage at increasing worker counts. kKernelConfigs[0] must stay the
/// naive kernel -- the sweep verifies every other row against its edge
/// set. "full" stays the serial pipeline so the mt rows read as speedup
/// over the serial engine; from PR 3 on, "full" includes the cross-bucket
/// bound sketch.
inline constexpr KernelConfig kKernelConfigs[] = {
    {"naive", false, false, false},
    {"bidirectional", true, false, false},
    {"ball_sharing", false, true, false},
    {"csr_snapshot", false, false, true},
    {"bound_sketch", false, false, false, true},
    {"bidirectional+csr", true, false, true},
    {"full", true, true, true, true},
    {"full+mt2", true, true, true, true, 2},
    {"full+mt4", true, true, true, true, 4},
};

struct KernelRun {
    KernelConfig config;
    double seconds = 0.0;
    std::size_t edges = 0;
    bool matches_naive = false;
    GreedyStats stats;
};

inline GreedyEngineOptions options_for(const KernelConfig& config, double t) {
    GreedyEngineOptions options;
    options.stretch = t;
    options.bidirectional = config.bidirectional;
    options.ball_sharing = config.ball_sharing;
    options.csr_snapshot = config.csr_snapshot;
    options.bound_sketch = config.bound_sketch;
    options.num_threads = config.threads;
    return options;
}

/// Run every kernel configuration on (g, t) and verify each edge set
/// against the naive kernel's -- the in-benchmark equivalence check the
/// acceptance criteria require.
inline std::vector<KernelRun> run_kernel_sweep(const Graph& g, double t) {
    std::vector<KernelRun> runs;
    Graph naive_spanner(0);
    for (const KernelConfig& config : kKernelConfigs) {
        KernelRun run;
        run.config = config;
        const Graph h = greedy_spanner_with(g, options_for(config, t), &run.stats);
        run.seconds = run.stats.seconds;
        run.edges = h.num_edges();
        if (runs.empty()) {
            naive_spanner = h;
            run.matches_naive = true;
        } else {
            run.matches_naive = same_edge_set(h, naive_spanner);
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

/// The metric-workload probe: n points, m = n(n-1)/2 candidates -- the
/// regime where the stage-2/stage-3 handoff dominates memory traffic and
/// the PR-2 verdict/bound arrays cost a flat 9 bytes per candidate
/// (1-byte verdict + 8-byte bound, both sized to the whole run). The v2
/// artifact tracks the measured bytes-per-candidate of the bucket-local
/// handoff against that baseline.
struct MetricProbeResult {
    std::size_t n = 0;
    std::size_t candidates = 0;
    double stretch = 0.0;
    double serial_seconds = 0.0;
    double mt2_seconds = 0.0;
    std::size_t edges = 0;
    bool matches_serial = false;  ///< mt2 edge set == serial edge set
    std::size_t handoff_bytes = 0;
    double bytes_per_candidate = 0.0;
    /// The PR-2 handoff layout's flat cost on the same run.
    double pr2_bytes_per_candidate = 9.0;
    /// Two-phase accept-path counters of the mt2 run.
    std::size_t repairs = 0;
    std::size_t repair_fallbacks = 0;
    GreedyStats stats;  ///< serial cached-engine run
};

inline MetricProbeResult run_metric_probe(std::size_t n, double t) {
    Rng rng(1234);
    const EuclideanMetric pts =
        uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
    MetricProbeResult probe;
    probe.n = n;
    probe.candidates = n * (n - 1) / 2;
    probe.stretch = t;

    MetricGreedyOptions serial_options{.stretch = t, .use_distance_cache = true,
                                       .num_threads = 1};
    const Graph serial = greedy_spanner_metric(pts, serial_options, &probe.stats);
    probe.serial_seconds = probe.stats.seconds;
    probe.edges = serial.num_edges();

    MetricGreedyOptions mt_options{.stretch = t, .use_distance_cache = true,
                                   .num_threads = 2};
    GreedyStats mt_stats;
    const Graph mt = greedy_spanner_metric(pts, mt_options, &mt_stats);
    probe.mt2_seconds = mt_stats.seconds;
    probe.matches_serial = same_edge_set(mt, serial);
    probe.repairs = mt_stats.repairs;
    probe.repair_fallbacks = mt_stats.repair_fallbacks;
    // The parallel handoff adds the verdict bitsets; report the larger of
    // the two runs so the column upper-bounds both paths.
    probe.handoff_bytes =
        std::max(probe.stats.handoff_peak_bytes, mt_stats.handoff_peak_bytes);
    probe.bytes_per_candidate =
        static_cast<double>(probe.handoff_bytes) /
        static_cast<double>(probe.candidates == 0 ? 1 : probe.candidates);
    return probe;
}

/// The accept-heavy probe of the speculative two-phase accept path: a
/// clustered-euclidean geometric graph (dense intra-cluster candidate
/// sets with near-parallel alternatives) at moderate stretch, tuned so
/// the greedy keeps > 30% of all candidates -- the regime PR 2/PR 3
/// serialized entirely. Reports how the parallel run's tentative accepts
/// resolved: still-current snapshot certificates, phase-B repairs, or
/// full-query fallbacks. The acceptance criterion is repair_share >= 0.7.
struct AcceptProbeResult {
    std::size_t n = 0;
    std::size_t m = 0;  ///< candidate edges
    double stretch = 0.0;
    double accept_rate = 0.0;  ///< |H| / m
    double serial_seconds = 0.0;
    double mt2_seconds = 0.0;
    std::size_t edges = 0;
    bool matches_serial = false;
    std::size_t snapshot_accepts = 0;
    std::size_t repairs = 0;
    std::size_t repair_reprobes = 0;
    std::size_t repair_fallbacks = 0;
    std::size_t certs_published = 0;
    std::size_t cert_ball_aborts = 0;
    /// (snapshot_accepts + repairs) / (snapshot_accepts + repairs +
    /// repair_fallbacks): the share of tentative accepts resolved without
    /// a full exact query.
    double repair_share = 0.0;
};

inline AcceptProbeResult run_accept_probe(std::size_t n, double t) {
    Rng rng(7);
    const Graph g = clustered_geometric(n, 12, 60.0, 1.0, 0.6, rng);
    AcceptProbeResult probe;
    probe.n = n;
    probe.m = g.num_edges();
    probe.stretch = t;

    GreedyEngineOptions serial_options;
    serial_options.stretch = t;
    GreedyStats serial_stats;
    const Graph serial = greedy_spanner_with(g, serial_options, &serial_stats);
    probe.serial_seconds = serial_stats.seconds;
    probe.edges = serial.num_edges();
    probe.accept_rate =
        static_cast<double>(serial.num_edges()) / static_cast<double>(g.num_edges());

    GreedyEngineOptions mt_options;
    mt_options.stretch = t;
    mt_options.num_threads = 2;
    GreedyStats mt;
    const Graph parallel = greedy_spanner_with(g, mt_options, &mt);
    probe.mt2_seconds = mt.seconds;
    probe.matches_serial = same_edge_set(parallel, serial);
    probe.snapshot_accepts = mt.snapshot_accepts;
    probe.repairs = mt.repairs;
    probe.repair_reprobes = mt.repair_reprobes;
    probe.repair_fallbacks = mt.repair_fallbacks;
    probe.certs_published = mt.certs_published;
    probe.cert_ball_aborts = mt.cert_ball_aborts;
    const double resolved = static_cast<double>(probe.snapshot_accepts + probe.repairs);
    const double tentative = resolved + static_cast<double>(probe.repair_fallbacks);
    probe.repair_share = tentative > 0.0 ? resolved / tentative : 1.0;
    return probe;
}

/// Process peak RSS in KiB (0 where unsupported).
inline std::size_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::size_t>(ru.ru_maxrss) / 1024;  // bytes on macOS
#else
        return static_cast<std::size_t>(ru.ru_maxrss);  // KiB on Linux
#endif
    }
#endif
    return 0;
}

inline std::string bench_json_path() {
    const char* env = std::getenv("GSP_BENCH_JSON");
    return env != nullptr ? std::string(env) : std::string("BENCH_greedy.json");
}

inline void write_bench_greedy_json(const std::string& path, const std::string& source,
                                    const std::string& instance_kind, std::size_t n,
                                    std::size_t m, double t,
                                    const std::vector<KernelRun>& runs,
                                    const MetricProbeResult* metric_probe = nullptr,
                                    const AcceptProbeResult* accept_probe = nullptr) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    const auto b = [](bool v) { return v ? "true" : "false"; };
    out << "{\n";
    out << "  \"schema\": \"gsp.bench_greedy.v3\",\n";
    out << "  \"source\": \"" << source << "\",\n";
    out << "  \"stretch\": " << t << ",\n";
    out << "  \"instance\": {\"kind\": \"" << instance_kind << "\", \"n\": " << n
        << ", \"m\": " << m << "},\n";
    out << "  \"configs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const KernelRun& r = runs[i];
        const double bpc = static_cast<double>(r.stats.handoff_peak_bytes) /
                           static_cast<double>(m == 0 ? 1 : m);
        out << "    {\"name\": \"" << r.config.name << "\", "
            << "\"bidirectional\": " << b(r.config.bidirectional) << ", "
            << "\"ball_sharing\": " << b(r.config.ball_sharing) << ", "
            << "\"csr_snapshot\": " << b(r.config.csr_snapshot) << ", "
            << "\"bound_sketch\": " << b(r.config.bound_sketch) << ", "
            << "\"threads\": " << r.config.threads << ", "
            << "\"seconds\": " << r.seconds << ", "
            << "\"edges\": " << r.edges << ", "
            << "\"matches_naive\": " << b(r.matches_naive) << ",\n"
            << "     \"handoff_bytes\": " << r.stats.handoff_peak_bytes << ", "
            << "\"bytes_per_candidate\": " << bpc << ",\n"
            << "     \"stats\": {"
            << "\"edges_examined\": " << r.stats.edges_examined << ", "
            << "\"dijkstra_runs\": " << r.stats.dijkstra_runs << ", "
            << "\"balls_computed\": " << r.stats.balls_computed << ", "
            << "\"cache_hits\": " << r.stats.cache_hits << ", "
            << "\"csr_rebuilds\": " << r.stats.csr_rebuilds << ", "
            << "\"csr_compactions\": " << r.stats.csr_compactions << ", "
            << "\"sketch_hits\": " << r.stats.sketch_hits << ", "
            << "\"sketch_accepts\": " << r.stats.sketch_accepts << ", "
            << "\"bidirectional_meets\": " << r.stats.bidirectional_meets << ", "
            << "\"snapshot_accepts\": " << r.stats.snapshot_accepts << ", "
            << "\"repairs\": " << r.stats.repairs << ", "
            << "\"repair_reprobes\": " << r.stats.repair_reprobes << ", "
            << "\"repair_fallbacks\": " << r.stats.repair_fallbacks << ", "
            << "\"certs_published\": " << r.stats.certs_published << ", "
            << "\"cert_ball_aborts\": " << r.stats.cert_ball_aborts << ", "
            << "\"buckets\": " << r.stats.buckets << "}}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    if (metric_probe != nullptr) {
        const MetricProbeResult& p = *metric_probe;
        out << "  \"metric_probe\": {\"kind\": \"euclidean_uniform\", "
            << "\"n\": " << p.n << ", "
            << "\"candidates\": " << p.candidates << ", "
            << "\"stretch\": " << p.stretch << ", "
            << "\"serial_seconds\": " << p.serial_seconds << ", "
            << "\"mt2_seconds\": " << p.mt2_seconds << ", "
            << "\"edges\": " << p.edges << ", "
            << "\"matches_serial\": " << b(p.matches_serial) << ", "
            << "\"handoff_bytes\": " << p.handoff_bytes << ", "
            << "\"bytes_per_candidate\": " << p.bytes_per_candidate << ", "
            << "\"pr2_bytes_per_candidate\": " << p.pr2_bytes_per_candidate << ", "
            << "\"sketch_hits\": " << p.stats.sketch_hits << ", "
            << "\"repairs\": " << p.repairs << ", "
            << "\"repair_fallbacks\": " << p.repair_fallbacks << ", "
            << "\"dijkstra_runs\": " << p.stats.dijkstra_runs << "},\n";
    }
    if (accept_probe != nullptr) {
        const AcceptProbeResult& p = *accept_probe;
        out << "  \"accept_probe\": {\"kind\": \"clustered_geometric\", "
            << "\"n\": " << p.n << ", "
            << "\"m\": " << p.m << ", "
            << "\"stretch\": " << p.stretch << ", "
            << "\"accept_rate\": " << p.accept_rate << ", "
            << "\"serial_seconds\": " << p.serial_seconds << ", "
            << "\"mt2_seconds\": " << p.mt2_seconds << ", "
            << "\"edges\": " << p.edges << ", "
            << "\"matches_serial\": " << b(p.matches_serial) << ", "
            << "\"snapshot_accepts\": " << p.snapshot_accepts << ", "
            << "\"repairs\": " << p.repairs << ", "
            << "\"repair_reprobes\": " << p.repair_reprobes << ", "
            << "\"repair_fallbacks\": " << p.repair_fallbacks << ", "
            << "\"certs_published\": " << p.certs_published << ", "
            << "\"cert_ball_aborts\": " << p.cert_ball_aborts << ", "
            << "\"repair_share\": " << p.repair_share << "},\n";
    }
    out << "  \"peak_rss_kb\": " << peak_rss_kb() << ",\n";
    // Named lookups: the ladder may append parallel rows after "full", so
    // ratios reference configs by name rather than position.
    const auto seconds_of = [&runs](const std::string& name) -> double {
        for (const KernelRun& r : runs) {
            if (name == r.config.name) return r.seconds;
        }
        return 0.0;
    };
    const double naive_s = runs.front().seconds;
    const double full_s = seconds_of("full");
    const double mt_s = seconds_of("full+mt4");
    out << "  \"speedup_full_vs_naive\": "
        << (full_s > 0.0 ? naive_s / full_s : 0.0) << ",\n";
    out << "  \"speedup_parallel_vs_full\": "
        << (mt_s > 0.0 && full_s > 0.0 ? full_s / mt_s : 0.0) << "\n";
    out << "}\n";
}

}  // namespace gsp::benchutil
