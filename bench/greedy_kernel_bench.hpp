// Shared harness for the greedy-kernel configuration sweep and the
// machine-readable BENCH_greedy.json artifact.
//
// Both bench_runtime (full-size sweep, the perf-trajectory source of truth)
// and bench_micro (CI smoke that validates the schema) emit the same JSON
// shape, version-tagged "gsp.bench_greedy.v1":
//
//   {
//     "schema": "gsp.bench_greedy.v1",
//     "source": "<bench binary>",
//     "stretch": <t>,
//     "instance": {"kind": ..., "n": ..., "m": ...},
//     "configs": [
//       {"name": ..., "bidirectional": ..., "ball_sharing": ...,
//        "csr_snapshot": ..., "seconds": ..., "edges": ...,
//        "matches_naive": ..., "stats": {...}}, ...],
//     "speedup_full_vs_naive": <naive seconds / full seconds>
//   }
//
// The output path defaults to BENCH_greedy.json in the working directory;
// override with the GSP_BENCH_JSON environment variable.
// scripts/validate_bench_json.py checks the schema in CI.
#pragma once

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/greedy.hpp"
#include "core/greedy_engine.hpp"
#include "graph/graph.hpp"

namespace gsp::benchutil {

struct KernelConfig {
    const char* name;
    bool bidirectional;
    bool ball_sharing;
    bool csr_snapshot;
    std::size_t threads = 1;  ///< stage-2 workers (1 = serial pipeline)
};

/// The ablation ladder: the naive reference, each optimisation alone, the
/// full serial engine, and the full engine with the parallel prefilter
/// stage at increasing worker counts. kKernelConfigs[0] must stay the
/// naive kernel -- the sweep verifies every other row against its edge
/// set. "full" stays the serial pipeline so the mt rows read as speedup
/// over the PR-1 engine.
inline constexpr KernelConfig kKernelConfigs[] = {
    {"naive", false, false, false},
    {"bidirectional", true, false, false},
    {"ball_sharing", false, true, false},
    {"csr_snapshot", false, false, true},
    {"bidirectional+csr", true, false, true},
    {"full", true, true, true},
    {"full+mt2", true, true, true, 2},
    {"full+mt4", true, true, true, 4},
};

struct KernelRun {
    KernelConfig config;
    double seconds = 0.0;
    std::size_t edges = 0;
    bool matches_naive = false;
    GreedyStats stats;
};

/// Run every kernel configuration on (g, t) and verify each edge set
/// against the naive kernel's -- the in-benchmark equivalence check the
/// acceptance criteria require.
inline std::vector<KernelRun> run_kernel_sweep(const Graph& g, double t) {
    std::vector<KernelRun> runs;
    Graph naive_spanner(0);
    for (const KernelConfig& config : kKernelConfigs) {
        GreedyEngineOptions options;
        options.stretch = t;
        options.bidirectional = config.bidirectional;
        options.ball_sharing = config.ball_sharing;
        options.csr_snapshot = config.csr_snapshot;
        options.num_threads = config.threads;
        KernelRun run;
        run.config = config;
        const Graph h = greedy_spanner_with(g, options, &run.stats);
        run.seconds = run.stats.seconds;
        run.edges = h.num_edges();
        if (runs.empty()) {
            naive_spanner = h;
            run.matches_naive = true;
        } else {
            run.matches_naive = same_edge_set(h, naive_spanner);
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

inline std::string bench_json_path() {
    const char* env = std::getenv("GSP_BENCH_JSON");
    return env != nullptr ? std::string(env) : std::string("BENCH_greedy.json");
}

inline void write_bench_greedy_json(const std::string& path, const std::string& source,
                                    const std::string& instance_kind, std::size_t n,
                                    std::size_t m, double t,
                                    const std::vector<KernelRun>& runs) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    const auto b = [](bool v) { return v ? "true" : "false"; };
    out << "{\n";
    out << "  \"schema\": \"gsp.bench_greedy.v1\",\n";
    out << "  \"source\": \"" << source << "\",\n";
    out << "  \"stretch\": " << t << ",\n";
    out << "  \"instance\": {\"kind\": \"" << instance_kind << "\", \"n\": " << n
        << ", \"m\": " << m << "},\n";
    out << "  \"configs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const KernelRun& r = runs[i];
        out << "    {\"name\": \"" << r.config.name << "\", "
            << "\"bidirectional\": " << b(r.config.bidirectional) << ", "
            << "\"ball_sharing\": " << b(r.config.ball_sharing) << ", "
            << "\"csr_snapshot\": " << b(r.config.csr_snapshot) << ", "
            << "\"threads\": " << r.config.threads << ", "
            << "\"seconds\": " << r.seconds << ", "
            << "\"edges\": " << r.edges << ", "
            << "\"matches_naive\": " << b(r.matches_naive) << ",\n"
            << "     \"stats\": {"
            << "\"edges_examined\": " << r.stats.edges_examined << ", "
            << "\"dijkstra_runs\": " << r.stats.dijkstra_runs << ", "
            << "\"balls_computed\": " << r.stats.balls_computed << ", "
            << "\"cache_hits\": " << r.stats.cache_hits << ", "
            << "\"csr_rebuilds\": " << r.stats.csr_rebuilds << ", "
            << "\"bidirectional_meets\": " << r.stats.bidirectional_meets << ", "
            << "\"snapshot_accepts\": " << r.stats.snapshot_accepts << ", "
            << "\"buckets\": " << r.stats.buckets << "}}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    // Named lookups: the ladder may append parallel rows after "full", so
    // ratios reference configs by name rather than position.
    const auto seconds_of = [&runs](const std::string& name) -> double {
        for (const KernelRun& r : runs) {
            if (name == r.config.name) return r.seconds;
        }
        return 0.0;
    };
    const double naive_s = runs.front().seconds;
    const double full_s = seconds_of("full");
    const double mt_s = seconds_of("full+mt4");
    out << "  \"speedup_full_vs_naive\": "
        << (full_s > 0.0 ? naive_s / full_s : 0.0) << ",\n";
    out << "  \"speedup_parallel_vs_full\": "
        << (mt_s > 0.0 && full_s > 0.0 ? full_s / mt_s : 0.0) << "\n";
    out << "}\n";
}

}  // namespace gsp::benchutil
