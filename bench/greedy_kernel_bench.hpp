// Shared harness for the greedy-kernel configuration sweep and the
// machine-readable BENCH_greedy.json artifact.
//
// Both bench_runtime (full-size sweep, the perf-trajectory source of truth)
// and bench_micro (CI smoke that validates the schema) emit the same JSON
// shape, version-tagged "gsp.bench_greedy.v8", built on the library's
// shared JsonWriter + append_greedy_stats serializer (src/api/build_report)
// instead of hand-rolled streams:
//
//   {
//     "schema": "gsp.bench_greedy.v5",
//     "source": "<bench binary>",
//     "stretch": <t>,
//     "instance": {"kind": ..., "n": ..., "m": ...},
//     "configs": [
//       {"name": ..., "bidirectional": ..., "ball_sharing": ...,
//        "csr_snapshot": ..., "bound_sketch": ..., "seconds": ...,
//        "edges": ..., "matches_naive": ..., "handoff_bytes": ...,
//        "bytes_per_candidate": ..., "rss_delta_kb": ..., "stats": {...}},
//       ...],
//     "metric_probe": {...},        // bench_runtime only (optional)
//     "accept_probe": {...},        // bench_runtime only (optional)
//     "session_probe": {...},       // the session-reuse probe (v4)
//     "mem_probe": {...},           // the linear-space probe (v5, required)
//     "time_probe": {...},          // the cell-batched probe (v6, required)
//     "group_probe": {...},         // the group-probe ablation (v7, required)
//     "simd_probe": {...},          // the SIMD kernel ablation (v8, required)
//     "peak_rss_kb": <ru_maxrss>,
//     "speedup_full_vs_naive": <naive seconds / full seconds>
//   }
//
// v2 added the memory trajectory (handoff bytes-per-candidate, peak RSS,
// the metric-workload probe); v3 the speculative-accept counters and the
// accept-heavy probe. v4 (the unified API) adds the session-reuse probe:
// the same instance built repeatedly through one SpannerSession vs a fresh
// session per call, with the per-call thread-pool / workspace construction
// counters -- warm calls must report zero of each (enforced by
// scripts/validate_bench_json.py), certifying the warm-start contract of
// the request-serving path.
//
// v5 (chunked candidate streaming) makes the RSS accounting honest and
// adds the memory probe. Before, a single getrusage() at JSON-write time
// attributed the process-lifetime maximum to every row; now every config
// row and every probe samples ru_maxrss before and after and reports the
// delta (the high-water mark is monotone, so a zero delta means the phase
// fit inside already-touched memory). The required "mem_probe" object
// builds a t = 2 spanner over the grid-pruned streaming candidate source
// on uniform and clustered 2D instances -- n = 10^6 by default in
// bench_runtime, 10^5 in bench_micro's per-PR smoke, overridable with
// GSP_MEM_PROBE_N -- and must stay inside a fixed linear RSS budget
// (enforced by the validator), certifying the linear-space claim end to
// end: candidates are streamed one window at a time, never materialized.
//
// v7 (multi-target group probes) adds the required "group_probe" object:
// the same instance built with EngineTuning::GroupProbing kOff (the PR-7
// per-candidate baseline) and kOn (one batched traversal deciding a whole
// source group), on both the metric all-pairs and the graph shapes, each
// normalized to microseconds per streamed candidate. The kOn run's
// group-probe counters attribute the amortization (mean group size,
// early-termination share), and the validator enforces bit-identical edge
// sets plus the 1.05x us/candidate regression floor of the metric arm on the reduced
// CI shape.
//
// v8 (SIMD prefilter backend) adds the required "simd_probe" object: the
// four vector kernels (the far-sweep bound scan, the batched 2D distance
// evaluation, the sketch way-probe match, and the LSD radix chunk sort vs
// std::stable_sort) each timed scalar-vs-dispatched on a fixed synthetic
// workload, with outputs asserted identical before any timing is
// reported. The dispatch-selected backend name rides along, and the
// "time_probe" / "group_probe" objects now record the backend their
// builds executed ("simd_backend") -- the validator refuses history
// comparisons of rows whose backends differ, so a machine change can
// never masquerade as a kernel regression.
//
// The output path defaults to BENCH_greedy.json in the working directory;
// override with the GSP_BENCH_JSON environment variable.
// scripts/validate_bench_json.py checks the schema in CI.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "api/build_report.hpp"
#include "api/candidate_source.hpp"
#include "api/grid_source.hpp"
#include "api/session.hpp"
#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "simd/radix_sort.hpp"
#include "simd/simd.hpp"
#include "util/json.hpp"
#include "util/random.hpp"
#include "util/rss.hpp"
#include "util/timer.hpp"

namespace gsp::benchutil {

struct KernelConfig {
    const char* name;
    bool bidirectional;
    bool ball_sharing;
    bool csr_snapshot;
    bool bound_sketch = false;
    std::size_t threads = 1;  ///< stage-2 workers (1 = serial pipeline)
};

/// The ablation ladder: the naive reference, each optimisation alone, the
/// full serial engine, and the full engine with the parallel prefilter
/// stage at increasing worker counts. kKernelConfigs[0] must stay the
/// naive kernel -- the sweep verifies every other row against its edge
/// set. "full" stays the serial pipeline so the mt rows read as speedup
/// over the serial engine; from PR 3 on, "full" includes the cross-bucket
/// bound sketch.
inline constexpr KernelConfig kKernelConfigs[] = {
    {"naive", false, false, false},
    {"bidirectional", true, false, false},
    {"ball_sharing", false, true, false},
    {"csr_snapshot", false, false, true},
    {"bound_sketch", false, false, false, true},
    {"bidirectional+csr", true, false, true},
    {"full", true, true, true, true},
    {"full+mt2", true, true, true, true, 2},
    {"full+mt4", true, true, true, true, 4},
};

struct KernelRun {
    KernelConfig config;
    double seconds = 0.0;
    std::size_t edges = 0;
    bool matches_naive = false;
    GreedyStats stats;
    /// ru_maxrss high-water mark sampled around this run. The mark is
    /// monotone across the process, so delta = after - before is the
    /// memory growth attributable to *this* configuration (0 when the run
    /// fit inside memory an earlier run already touched).
    std::size_t rss_before_kb = 0;
    std::size_t rss_after_kb = 0;
};

inline BuildOptions options_for(const KernelConfig& config, double t) {
    BuildOptions options;
    options.stretch = t;
    options.engine.bidirectional = config.bidirectional;
    options.engine.ball_sharing = config.ball_sharing;
    options.engine.csr_snapshot = config.csr_snapshot;
    options.engine.bound_sketch = config.bound_sketch;
    options.engine.num_threads = config.threads;
    return options;
}

/// Run every kernel configuration on (g, t) and verify each edge set
/// against the naive kernel's -- the in-benchmark equivalence check the
/// acceptance criteria require. Each configuration runs in a fresh
/// session (per-call timings stay comparable across the bench history).
inline std::vector<KernelRun> run_kernel_sweep(const Graph& g, double t) {
    std::vector<KernelRun> runs;
    Graph naive_spanner(0);
    for (const KernelConfig& config : kKernelConfigs) {
        KernelRun run;
        run.config = config;
        run.rss_before_kb = process_peak_rss_kb();
        SpannerSession session;
        GraphCandidateSource source(g);
        BuildReport report;
        const Graph h = session.build(source, options_for(config, t), &report);
        run.rss_after_kb = process_peak_rss_kb();
        run.stats = report.stats;
        run.stats.seconds = report.seconds;
        run.seconds = report.seconds;
        run.edges = h.num_edges();
        if (runs.empty()) {
            naive_spanner = h;
            run.matches_naive = true;
        } else {
            run.matches_naive = same_edge_set(h, naive_spanner);
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

/// The metric-workload probe: n points, m = n(n-1)/2 candidates -- the
/// regime where the stage-2/stage-3 handoff dominates memory traffic and
/// the PR-2 verdict/bound arrays cost a flat 9 bytes per candidate (1-byte
/// verdict + 8-byte bound, both sized to the whole run). The artifact
/// tracks the measured bytes-per-candidate of the bucket-local handoff
/// against that baseline.
struct MetricProbeResult {
    std::size_t n = 0;
    std::size_t candidates = 0;
    double stretch = 0.0;
    double serial_seconds = 0.0;
    double mt2_seconds = 0.0;
    std::size_t edges = 0;
    bool matches_serial = false;  ///< mt2 edge set == serial edge set
    std::size_t handoff_bytes = 0;
    double bytes_per_candidate = 0.0;
    /// The PR-2 handoff layout's flat cost on the same run.
    double pr2_bytes_per_candidate = 9.0;
    /// Two-phase accept-path counters of the mt2 run.
    std::size_t repairs = 0;
    std::size_t repair_fallbacks = 0;
    GreedyStats stats;  ///< serial cached-engine run
    std::size_t rss_before_kb = 0;  ///< ru_maxrss sampled around the probe
    std::size_t rss_after_kb = 0;
};

inline MetricProbeResult run_metric_probe(std::size_t n, double t) {
    Rng rng(1234);
    MetricProbeResult probe;
    probe.rss_before_kb = process_peak_rss_kb();
    const EuclideanMetric pts =
        uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
    probe.n = n;
    probe.candidates = n * (n - 1) / 2;
    probe.stretch = t;

    SpannerSession session;  // one session serves both runs (the API path)
    MetricCandidateSource source(pts);
    BuildOptions options;
    options.stretch = t;

    BuildReport serial_report;
    const Graph serial = session.build(source, options, &serial_report);
    probe.stats = serial_report.stats;
    probe.stats.seconds = serial_report.seconds;
    probe.serial_seconds = serial_report.seconds;
    probe.edges = serial.num_edges();

    options.engine.num_threads = 2;
    BuildReport mt_report;
    const Graph mt = session.build(source, options, &mt_report);
    probe.mt2_seconds = mt_report.seconds;
    probe.matches_serial = same_edge_set(mt, serial);
    probe.repairs = mt_report.stats.repairs;
    probe.repair_fallbacks = mt_report.stats.repair_fallbacks;
    // The parallel handoff adds the verdict bitsets; report the larger of
    // the two runs so the column upper-bounds both paths.
    probe.handoff_bytes = std::max(serial_report.stats.handoff_peak_bytes,
                                   mt_report.stats.handoff_peak_bytes);
    probe.bytes_per_candidate =
        static_cast<double>(probe.handoff_bytes) /
        static_cast<double>(probe.candidates == 0 ? 1 : probe.candidates);
    probe.rss_after_kb = process_peak_rss_kb();
    return probe;
}

/// The accept-heavy probe of the speculative two-phase accept path: a
/// clustered-euclidean geometric graph (dense intra-cluster candidate
/// sets with near-parallel alternatives) at moderate stretch, tuned so
/// the greedy keeps > 30% of all candidates -- the regime PR 2/PR 3
/// serialized entirely. Reports how the parallel run's tentative accepts
/// resolved: still-current snapshot certificates, phase-B repairs, or
/// full-query fallbacks. The acceptance criterion is repair_share >= 0.7.
struct AcceptProbeResult {
    std::size_t n = 0;
    std::size_t m = 0;  ///< candidate edges
    double stretch = 0.0;
    double accept_rate = 0.0;  ///< |H| / m
    double serial_seconds = 0.0;
    double mt2_seconds = 0.0;
    std::size_t edges = 0;
    bool matches_serial = false;
    std::size_t snapshot_accepts = 0;
    std::size_t repairs = 0;
    std::size_t repair_reprobes = 0;
    std::size_t repair_fallbacks = 0;
    std::size_t certs_published = 0;
    std::size_t cert_ball_aborts = 0;
    /// (snapshot_accepts + repairs) / (snapshot_accepts + repairs +
    /// repair_fallbacks): the share of tentative accepts resolved without
    /// a full exact query.
    double repair_share = 0.0;
    std::size_t rss_before_kb = 0;  ///< ru_maxrss sampled around the probe
    std::size_t rss_after_kb = 0;
};

inline AcceptProbeResult run_accept_probe(std::size_t n, double t) {
    Rng rng(7);
    AcceptProbeResult probe;
    probe.rss_before_kb = process_peak_rss_kb();
    const Graph g = clustered_geometric(n, 12, 60.0, 1.0, 0.6, rng);
    probe.n = n;
    probe.m = g.num_edges();
    probe.stretch = t;

    SpannerSession session;
    GraphCandidateSource source(g);
    BuildOptions options;
    options.stretch = t;

    BuildReport serial_report;
    const Graph serial = session.build(source, options, &serial_report);
    probe.serial_seconds = serial_report.seconds;
    probe.edges = serial.num_edges();
    probe.accept_rate =
        static_cast<double>(serial.num_edges()) / static_cast<double>(g.num_edges());

    options.engine.num_threads = 2;
    BuildReport mt;
    const Graph parallel = session.build(source, options, &mt);
    probe.mt2_seconds = mt.seconds;
    probe.matches_serial = same_edge_set(parallel, serial);
    probe.snapshot_accepts = mt.stats.snapshot_accepts;
    probe.repairs = mt.stats.repairs;
    probe.repair_reprobes = mt.stats.repair_reprobes;
    probe.repair_fallbacks = mt.stats.repair_fallbacks;
    probe.certs_published = mt.stats.certs_published;
    probe.cert_ball_aborts = mt.stats.cert_ball_aborts;
    const double resolved = static_cast<double>(probe.snapshot_accepts + probe.repairs);
    const double tentative = resolved + static_cast<double>(probe.repair_fallbacks);
    probe.repair_share = tentative > 0.0 ? resolved / tentative : 1.0;
    probe.rss_after_kb = process_peak_rss_kb();
    return probe;
}

/// The session-reuse probe: the same parallel build run `builds` times
/// through one warm SpannerSession vs a fresh session per call. The
/// counters certify the tentpole's warm-start claim -- a warm build()
/// constructs zero thread pools and zero Dijkstra workspaces (the
/// validator enforces both at exactly 0) -- and the seconds columns show
/// the per-call setup cost eliminated.
struct SessionProbeResult {
    std::size_t n = 0;
    std::size_t m = 0;
    double stretch = 0.0;
    std::size_t threads = 0;
    std::size_t builds = 0;  ///< measured calls per arm (after the warm prime)
    double cold_seconds = 0.0;       ///< sum over fresh-session calls
    double warm_seconds = 0.0;       ///< sum over warm calls of one session
    double cold_setup_seconds = 0.0; ///< engine/pool acquisition, fresh sessions
    double warm_setup_seconds = 0.0; ///< same, warm session (should be ~0)
    std::size_t cold_pool_constructions = 0;
    std::size_t cold_workspace_constructions = 0;
    std::size_t warm_pool_constructions = 0;       ///< must be 0
    std::size_t warm_workspace_constructions = 0;  ///< must be 0
    bool matches = true;  ///< every warm edge set == the cold edge set
    std::size_t rss_before_kb = 0;  ///< ru_maxrss sampled around the probe
    std::size_t rss_after_kb = 0;
};

inline SessionProbeResult run_session_probe(std::size_t n, double t,
                                            std::size_t threads, std::size_t builds) {
    Rng rng(99);
    SessionProbeResult probe;
    probe.rss_before_kb = process_peak_rss_kb();
    const Graph g = random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
    probe.n = n;
    probe.m = g.num_edges();
    probe.stretch = t;
    probe.threads = threads;
    probe.builds = builds;

    BuildOptions options;
    options.stretch = t;
    options.engine.num_threads = threads;
    GraphCandidateSource source(g);

    Graph reference(0);
    for (std::size_t i = 0; i < builds; ++i) {
        SpannerSession cold;  // pays pool + workspace construction every call
        BuildReport report;
        Graph h = cold.build(source, options, &report);
        probe.cold_seconds += report.seconds;
        probe.cold_setup_seconds += report.setup_seconds;
        probe.cold_pool_constructions += report.pools_constructed;
        probe.cold_workspace_constructions += report.workspaces_constructed;
        if (i == 0) reference = std::move(h);
    }

    SpannerSession warm;
    {
        BuildReport prime;  // first call of the session pays construction once
        (void)warm.build(source, options, &prime);
    }
    for (std::size_t i = 0; i < builds; ++i) {
        BuildReport report;
        const Graph h = warm.build(source, options, &report);
        probe.warm_seconds += report.seconds;
        probe.warm_setup_seconds += report.setup_seconds;
        probe.warm_pool_constructions += report.pools_constructed;
        probe.warm_workspace_constructions += report.workspaces_constructed;
        probe.matches = probe.matches && same_edge_set(h, reference);
    }
    probe.rss_after_kb = process_peak_rss_kb();
    return probe;
}

/// One instance of the linear-space memory probe: a t = 2 greedy build
/// over the grid-pruned streaming candidate source, with the candidate
/// accounting and the per-instance ru_maxrss samples that certify the
/// candidates were streamed, never materialized.
struct MemProbeInstance {
    std::string kind;  ///< "uniform" | "clustered"
    double gen_seconds = 0.0;    ///< instance generation (streaming emitter)
    double build_seconds = 0.0;  ///< session.build() wall clock
    std::size_t edges = 0;
    double weight = 0.0;
    double stretch_target = 0.0;  ///< dumbbell bound t(s+4)/(s-4)
    std::size_t candidates_streamed = 0;
    std::size_t candidate_buffer_peak_bytes = 0;  ///< peak resident chunk
    std::size_t rss_before_kb = 0;
    std::size_t rss_after_kb = 0;
};

/// The v5 headline probe: can the chunked pipeline build a t = 2 spanner
/// on n = 10^6 2D points inside a fixed *linear* RSS budget? Candidate
/// counts are ~100n at s = 5 (near pairs enumerated exactly below the
/// cutoff, one representative pair per ring cell pair above it), so a
/// materialized run would need ~100n * 16 B = ~1.6 GiB at n = 10^6; the
/// streamed run's candidate buffer peaks at one window instead, and the
/// budget below leaves room only for the O(n) structures (points, grid
/// levels, the spanner, workspaces).
struct MemProbeResult {
    std::size_t n = 0;
    double stretch = 0.0;     ///< engine t over the candidate stream
    double separation = 0.0;  ///< grid separation s (> 4)
    std::size_t rss_budget_kb = 0;  ///< kMemProbeBudget* evaluated at n
    std::size_t rss_before_kb = 0;  ///< high-water mark at probe start
    bool within_budget = true;      ///< max(after) - before <= budget
    std::vector<MemProbeInstance> instances;
};

/// The linear RSS budget of the memory probe: a flat base (binary, heap
/// warmup, earlier probes' small instances) plus a per-point allowance
/// covering coordinates (16 B), the grid hierarchy (~30 B across levels),
/// the spanner adjacency lists (~1.44 edges/point), Dijkstra workspaces,
/// the incremental CSR mirror, and allocator slack. Calibrated against
/// measured high-waters of +62,680 KiB at n = 10^5 and +185,380 KiB at
/// n = 3x10^5 (uniform + clustered, single-core Release, sketch off) --
/// a 2.96x delta for 3x the points, confirming the linear model -- so
/// 896 B/point gives ~1.8-2.3x headroom at those shapes and ~1.45x at
/// 10^6 under straight extrapolation (~630 MiB) while staying far below what any
/// materializing run needs -- the candidate array alone is 16 B x 7.9M
/// = 121 MiB at 10^5 (vs a 149 MiB total budget) and ~2.5 GiB at 10^6
/// (vs 918 MiB). The validator re-derives within_budget from the raw
/// samples, so a change that starts materializing candidates fails CI.
inline constexpr std::size_t kMemProbeBudgetBaseKb = 65536;       // 64 MiB
inline constexpr std::size_t kMemProbeBudgetBytesPerPoint = 896;  // ~0.88 KiB

inline std::size_t mem_probe_budget_kb(std::size_t n) {
    return kMemProbeBudgetBaseKb + n * kMemProbeBudgetBytesPerPoint / 1024;
}

/// Probe size: `fallback` unless the GSP_MEM_PROBE_N environment variable
/// overrides it (CI's per-PR smoke runs the reduced 10^5 shape; the
/// history job on main runs the full 10^6).
inline std::size_t mem_probe_n(std::size_t fallback) {
    if (const char* env = std::getenv("GSP_MEM_PROBE_N")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return fallback;
}

inline MemProbeResult run_mem_probe(std::size_t n, double t = 2.0,
                                    double separation = 5.0) {
    MemProbeResult probe;
    probe.n = n;
    probe.stretch = t;
    probe.separation = separation;
    probe.rss_budget_kb = mem_probe_budget_kb(n);
    probe.rss_before_kb = process_peak_rss_kb();

    SpannerSession session;  // one session: both builds share the buffer
    BuildOptions options;
    options.stretch = t;
    // The cross-bucket bound sketch is O(n * sketch_ways) resident memory
    // (~64 MiB at n = 10^6). Since the cell-batched path it *does* earn
    // its keep on grid streams (via-landmark coarse rejects), but this
    // probe certifies the RSS floor, not wall clock -- the time probe
    // below measures the sketch-on build -- so it stays off here to keep
    // the budget tight.
    options.engine.bound_sketch = false;
    const double extent = std::sqrt(static_cast<double>(n)) * 10.0;

    const auto run_instance = [&](const char* kind, double gen_seconds,
                                  std::size_t rss_before,
                                  const EuclideanMetric& pts) {
        MemProbeInstance inst;
        inst.kind = kind;
        inst.gen_seconds = gen_seconds;
        inst.rss_before_kb = rss_before;
        GridCandidateSource source(pts, separation);
        BuildReport report;
        const Graph h = session.build(source, options, &report);
        inst.build_seconds = report.seconds;
        inst.edges = h.num_edges();
        inst.weight = h.total_weight();
        inst.stretch_target = report.stretch_target;
        inst.candidates_streamed = report.stats.candidates_streamed;
        inst.candidate_buffer_peak_bytes = report.stats.candidate_buffer_peak_bytes;
        inst.rss_after_kb = process_peak_rss_kb();
        probe.within_budget =
            probe.within_budget &&
            inst.rss_after_kb - probe.rss_before_kb <= probe.rss_budget_kb;
        probe.instances.push_back(std::move(inst));
    };

    {
        Rng rng(2026);
        std::size_t before = process_peak_rss_kb();
        Timer timer;
        const EuclideanMetric uniform = uniform_points(n, 2, extent, rng);
        run_instance("uniform", timer.seconds(), before, uniform);
    }
    {
        // The clustered instance goes through the streaming emitter --
        // cluster centers resident, one point at a time into the flat
        // coordinate array -- the n = 10^6-capable generator path.
        Rng rng(2027);
        std::size_t before = process_peak_rss_kb();
        Timer timer;
        std::vector<double> coords;
        coords.reserve(n * 2);
        // n/100 clusters of ~100 points with spread extent/40 keeps the local
        // density ~2x uniform; tighter clusters (n/1000, extent/50) triple the
        // candidate count and the probe's build time with it.
        stream_clustered_points(n, 2, std::max<std::size_t>(n / 100, 1), extent,
                                extent / 40.0, rng,
                                [&](std::span<const double> p) {
                                    coords.insert(coords.end(), p.begin(), p.end());
                                });
        const EuclideanMetric clustered(2, std::move(coords));
        run_instance("clustered", timer.seconds(), before, clustered);
    }
    return probe;
}

/// The v6 headline probe: wall-clock of the grid-streamed t = 2 build
/// with the cell-batched rejection path on (the grid source's default),
/// reported as microseconds per streamed candidate so runs at different
/// n remain comparable. The cell-ball share (batched decisions over all
/// candidates) and the coarse-reject count attribute where the
/// amortization came from; the validator enforces the us/candidate
/// ceiling at the reduced CI shape and the end-to-end build ceiling at
/// the full n = 10^6 history shape.
struct TimeProbeResult {
    std::size_t n = 0;
    double stretch = 0.0;
    double separation = 0.0;
    double gen_seconds = 0.0;    ///< uniform point generation
    double grid_seconds = 0.0;   ///< grid hierarchy construction (source ctor)
    double build_seconds = 0.0;  ///< session.build() wall clock
    std::size_t edges = 0;
    std::size_t candidates = 0;
    double us_per_candidate = 0.0;
    std::size_t cell_balls = 0;
    std::size_t cell_ball_decisions = 0;
    std::size_t coarse_rejects = 0;
    double cell_ball_share = 0.0;  ///< cell_ball_decisions / candidates
    std::size_t dijkstra_runs = 0;
    std::string simd_backend;  ///< dispatch-resolved backend of this build (v8)
};

/// Probe size: `fallback` unless GSP_TIME_PROBE_N overrides it (CI's
/// per-PR smoke runs the reduced 10^5 shape; the history job on main
/// runs the full 10^6 with the 15-minute single-core assertion).
inline std::size_t time_probe_n(std::size_t fallback) {
    if (const char* env = std::getenv("GSP_TIME_PROBE_N")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return fallback;
}

inline TimeProbeResult run_time_probe(std::size_t n, double t = 2.0,
                                      double separation = 5.0) {
    TimeProbeResult probe;
    probe.n = n;
    probe.stretch = t;
    probe.separation = separation;
    const double extent = std::sqrt(static_cast<double>(n)) * 10.0;

    Rng rng(2026);
    Timer gen_timer;
    const EuclideanMetric pts = uniform_points(n, 2, extent, rng);
    probe.gen_seconds = gen_timer.seconds();

    Timer grid_timer;
    GridCandidateSource source(pts, separation);
    probe.grid_seconds = grid_timer.seconds();

    // Default engine tuning: the grid source flips cell batching on, and
    // the bound sketch stays on -- the batched path's drained cell balls
    // are what feed it (direct and via-landmark coarse rejects), unlike
    // the per-candidate path the mem probe's comment describes.
    SpannerSession session;
    BuildOptions options;
    options.stretch = t;
    BuildReport report;
    const Graph h = session.build(source, options, &report);

    probe.build_seconds = report.seconds;
    probe.edges = h.num_edges();
    probe.candidates = report.stats.candidates_streamed;
    probe.us_per_candidate =
        probe.candidates > 0
            ? probe.build_seconds * 1e6 / static_cast<double>(probe.candidates)
            : 0.0;
    probe.cell_balls = report.stats.cell_balls;
    probe.cell_ball_decisions = report.stats.cell_ball_decisions;
    probe.coarse_rejects = report.stats.coarse_rejects;
    probe.cell_ball_share =
        probe.candidates > 0
            ? static_cast<double>(probe.cell_ball_decisions) /
                  static_cast<double>(probe.candidates)
            : 0.0;
    probe.dijkstra_runs = report.stats.dijkstra_runs;
    probe.simd_backend = report.simd_backend;
    return probe;
}

/// One arm of the v7 group-probe ablation: the same instance built with
/// GroupProbing kOff (the PR-7 per-candidate baseline) and kOn (one
/// batched traversal per source group), serially, through one warm
/// session. The speedup column is the headline: how much the multi-target
/// kernel cuts the microseconds per streamed candidate while the edge set
/// stays bit-identical.
struct GroupProbeArm {
    std::string kind;  ///< "euclidean_uniform" | "random_nm"
    std::size_t n = 0;
    std::size_t m = 0;  ///< candidate edges (all pairs on the metric arm)
    double stretch = 0.0;
    std::size_t candidates = 0;  ///< streamed candidates (equal in both runs)
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    double off_us_per_candidate = 0.0;
    double on_us_per_candidate = 0.0;
    double speedup = 0.0;  ///< off_us / on_us
    bool matches_off = false;  ///< kOn edge set == kOff edge set
    std::size_t group_probes = 0;
    std::size_t group_probe_decisions = 0;
    std::size_t group_probe_early_exits = 0;
    double mean_group_size = 0.0;   ///< decisions per probe
    double early_exit_share = 0.0;  ///< probes stopped before draining
    std::size_t rss_before_kb = 0;
    std::size_t rss_after_kb = 0;
    std::string simd_backend;  ///< dispatch-resolved backend of both runs (v8)
};

struct GroupProbeResult {
    GroupProbeArm metric;
    GroupProbeArm graph;
};

inline GroupProbeArm run_group_probe_arm(CandidateSource& source, const char* kind,
                                         std::size_t n, std::size_t m, double t) {
    GroupProbeArm arm;
    arm.kind = kind;
    arm.n = n;
    arm.m = m;
    arm.stretch = t;
    arm.rss_before_kb = process_peak_rss_kb();

    SpannerSession session;
    BuildOptions options;
    options.stretch = t;
    options.engine.group_probing = EngineTuning::GroupProbing::kOff;
    (void)session.build(source, options);  // prime: all timed runs are warm

    // Min of three builds per arm: the ratio below feeds a CI hard-fail
    // floor, and a single-shot quotient of two noisy timings swings far
    // more than the kernel effect it is meant to police. Builds are
    // deterministic, so every repeat yields the same graph and counters
    // -- only the clock varies.
    constexpr int kReps = 3;
    BuildReport off_report;
    Graph off{0};
    arm.off_seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < kReps; ++r) {
        BuildReport rep;
        Graph g = session.build(source, options, &rep);
        if (rep.seconds < arm.off_seconds) {
            arm.off_seconds = rep.seconds;
            off_report = rep;
            off = std::move(g);
        }
    }
    arm.candidates = off_report.stats.candidates_streamed;

    options.engine.group_probing = EngineTuning::GroupProbing::kOn;
    BuildReport on_report;
    Graph on{0};
    arm.on_seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < kReps; ++r) {
        BuildReport rep;
        Graph g = session.build(source, options, &rep);
        if (rep.seconds < arm.on_seconds) {
            arm.on_seconds = rep.seconds;
            on_report = rep;
            on = std::move(g);
        }
    }
    arm.matches_off = same_edge_set(on, off);
    arm.simd_backend = on_report.simd_backend;

    const double cands =
        static_cast<double>(arm.candidates == 0 ? 1 : arm.candidates);
    arm.off_us_per_candidate = arm.off_seconds * 1e6 / cands;
    arm.on_us_per_candidate = arm.on_seconds * 1e6 / cands;
    arm.speedup = arm.on_us_per_candidate > 0.0
                      ? arm.off_us_per_candidate / arm.on_us_per_candidate
                      : 0.0;
    arm.group_probes = on_report.stats.group_probes;
    arm.group_probe_decisions = on_report.stats.group_probe_decisions;
    arm.group_probe_early_exits = on_report.stats.group_probe_early_exits;
    const double probes =
        static_cast<double>(arm.group_probes == 0 ? 1 : arm.group_probes);
    arm.mean_group_size = static_cast<double>(arm.group_probe_decisions) / probes;
    arm.early_exit_share =
        static_cast<double>(arm.group_probe_early_exits) / probes;
    arm.rss_after_kb = process_peak_rss_kb();
    return arm;
}

/// Probe size: `fallback` unless GSP_GROUP_PROBE_N overrides it (CI's
/// per-PR smoke runs the reduced shape on which the validator enforces
/// the 1.05x metric-arm regression floor; bench_runtime's history job runs larger).
inline std::size_t group_probe_n(std::size_t fallback) {
    if (const char* env = std::getenv("GSP_GROUP_PROBE_N")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return fallback;
}

/// The v7 headline probe. The metric arm is the all-pairs shape the
/// acceptance criterion names (widest groups: one anchor's candidates
/// span the whole bucket); the graph arm is the stock random_nm shape of
/// the kernel sweep, whose min-endpoint groups are narrower but still
/// amortize. Both arms run serial so the delta is the kernel swap, not
/// parallelism.
inline GroupProbeResult run_group_probe(std::size_t metric_n, double metric_t,
                                        std::size_t graph_n, double graph_t) {
    GroupProbeResult probe;
    {
        Rng rng(1234);
        const EuclideanMetric pts = uniform_points(
            metric_n, 2, std::sqrt(static_cast<double>(metric_n)) * 10.0, rng);
        MetricCandidateSource source(pts);
        probe.metric = run_group_probe_arm(source, "euclidean_uniform", metric_n,
                                           metric_n * (metric_n - 1) / 2, metric_t);
    }
    {
        Rng rng(42);
        const Graph g =
            random_graph_nm(graph_n, 8 * graph_n, {.lo = 1.0, .hi = 2.0}, rng);
        GraphCandidateSource source(g);
        probe.graph = run_group_probe_arm(source, "random_nm", graph_n,
                                          g.num_edges(), graph_t);
    }
    return probe;
}

/// One row of the v8 SIMD kernel ablation: the same workload through the
/// scalar reference table and through the dispatch-selected vector table
/// (or, for the radix row, std::stable_sort vs the LSD radix sorter).
/// outputs_identical is checked *before* any timing is recorded -- a row
/// whose arms disagree reports false and the validator hard-fails, so a
/// speedup can never be quoted for a kernel that changed answers.
struct SimdKernelAblation {
    double scalar_seconds = 0.0;
    double simd_seconds = 0.0;
    double speedup = 0.0;  ///< scalar_seconds / simd_seconds
    bool outputs_identical = false;
};

struct SimdProbeResult {
    std::string backend;  ///< dispatch-selected vector table ("scalar" = no-op ablation)
    SimdKernelAblation far_sweep;       ///< sorted-radii bound sweep
    SimdKernelAblation distance_batch;  ///< batched 2D Euclidean distances
    SimdKernelAblation sketch_probe;    ///< gathered way-probe matching
    SimdKernelAblation radix_sort;      ///< LSD radix vs std::stable_sort
};

namespace detail {

/// Keeps timed-loop results observable without pulling in a benchmark
/// library dependency (the header is shared by bench_micro and
/// bench_runtime, only the former links google-benchmark).
inline void simd_probe_sink(std::uint64_t v) {
    [[maybe_unused]] static volatile std::uint64_t s = 0;
    s = v;
}

template <typename F>
double simd_probe_min_seconds(int reps, F&& f) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        Timer timer;
        f();
        best = std::min(best, timer.seconds());
    }
    return best;
}

}  // namespace detail

/// The v8 kernel ablation: fixed synthetic workloads sized like the
/// shapes the engine actually feeds each kernel (bucket-scale sorted
/// sweeps, chunk-scale distance batches, 32-lane sketch blocks,
/// chunk-scale candidate sorts). Every row first proves its two arms
/// produce identical bytes, then reports min-of-reps wall clock for
/// each arm. On a machine whose dispatch resolves to scalar the vector
/// rows degenerate to speedup 1.0x by construction -- the validator
/// only enforces speedup floors when backend != "scalar".
inline SimdProbeResult run_simd_probe() {
    SimdProbeResult probe;
    const simd::Kernels& vec = simd::auto_kernels();
    const simd::Kernels& sca = simd::scalar_kernels();
    probe.backend = simd::backend_label(vec);
    constexpr int kReps = 5;
    Rng rng(20260808);

    {  // far sweep: one sorted key array, many probe radii from index 0.
        constexpr std::size_t kKeys = 1u << 15;
        constexpr std::size_t kProbes = 2048;
        std::vector<double> keys(kKeys);
        double acc = 0.0;
        for (double& k : keys) {
            // Duplicate-heavy ascending keys: ties exercise the strict
            // `< d` boundary the verdict classification depends on.
            acc += static_cast<double>(rng.index(3));
            k = acc;
        }
        std::vector<double> probes(kProbes);
        for (double& d : probes) d = rng.uniform(0.0, acc * 1.05);
        std::vector<std::size_t> out_s(kProbes);
        std::vector<std::size_t> out_v(kProbes);
        for (std::size_t i = 0; i < kProbes; ++i) {
            out_s[i] = sca.sweep_lower_bound(keys.data(), 0, kKeys, probes[i]);
            out_v[i] = vec.sweep_lower_bound(keys.data(), 0, kKeys, probes[i]);
        }
        probe.far_sweep.outputs_identical = out_s == out_v;
        const auto arm = [&](const simd::Kernels& k) {
            std::uint64_t sum = 0;
            for (std::size_t i = 0; i < kProbes; ++i) {
                sum += k.sweep_lower_bound(keys.data(), 0, kKeys, probes[i]);
            }
            detail::simd_probe_sink(sum);
        };
        probe.far_sweep.scalar_seconds =
            detail::simd_probe_min_seconds(kReps, [&] { arm(sca); });
        probe.far_sweep.simd_seconds =
            detail::simd_probe_min_seconds(kReps, [&] { arm(vec); });
    }

    {  // distance batch: chunk-scale coordinate arrays, one pass per rep.
        constexpr std::size_t kN = 1u << 16;
        constexpr int kInner = 16;
        std::vector<double> ax(kN), ay(kN), bx(kN), by(kN);
        for (std::size_t i = 0; i < kN; ++i) {
            ax[i] = rng.uniform(0.0, 1e4);
            ay[i] = rng.uniform(0.0, 1e4);
            bx[i] = rng.uniform(0.0, 1e4);
            by[i] = rng.uniform(0.0, 1e4);
        }
        std::vector<double> out_s(kN), out_v(kN);
        sca.distances2d(ax.data(), ay.data(), bx.data(), by.data(), kN, out_s.data());
        vec.distances2d(ax.data(), ay.data(), bx.data(), by.data(), kN, out_v.data());
        probe.distance_batch.outputs_identical =
            std::memcmp(out_s.data(), out_v.data(), kN * sizeof(double)) == 0;
        const auto arm = [&](const simd::Kernels& k, std::vector<double>& out) {
            for (int j = 0; j < kInner; ++j) {
                k.distances2d(ax.data(), ay.data(), bx.data(), by.data(), kN,
                              out.data());
            }
            detail::simd_probe_sink(static_cast<std::uint64_t>(out[kN - 1]));
        };
        probe.distance_batch.scalar_seconds =
            detail::simd_probe_min_seconds(kReps, [&] { arm(sca, out_s); });
        probe.distance_batch.simd_seconds =
            detail::simd_probe_min_seconds(kReps, [&] { arm(vec, out_v); });
    }

    {  // sketch probe: 32-lane way blocks, the sketch's match shape.
        constexpr std::size_t kLanes = 32;
        constexpr std::size_t kBlocks = 8192;
        constexpr int kInner = 16;
        constexpr std::uint32_t kSkip = 0xffffffffu;
        std::vector<std::uint32_t> a(kLanes * kBlocks), b(kLanes * kBlocks);
        for (std::size_t i = 0; i < a.size(); ++i) {
            // Small value range: frequent matches, occasional skip lanes.
            a[i] = rng.index(4) == 0 ? kSkip : static_cast<std::uint32_t>(rng.index(7));
            b[i] = static_cast<std::uint32_t>(rng.index(7));
        }
        std::vector<std::uint32_t> out_s(kBlocks), out_v(kBlocks);
        for (std::size_t blk = 0; blk < kBlocks; ++blk) {
            out_s[blk] = sca.match_pairs(a.data() + blk * kLanes,
                                         b.data() + blk * kLanes, kLanes, kSkip);
            out_v[blk] = vec.match_pairs(a.data() + blk * kLanes,
                                         b.data() + blk * kLanes, kLanes, kSkip);
        }
        probe.sketch_probe.outputs_identical = out_s == out_v;
        const auto arm = [&](const simd::Kernels& k) {
            std::uint64_t sum = 0;
            for (int j = 0; j < kInner; ++j) {
                for (std::size_t blk = 0; blk < kBlocks; ++blk) {
                    sum += k.match_pairs(a.data() + blk * kLanes,
                                         b.data() + blk * kLanes, kLanes, kSkip);
                }
            }
            detail::simd_probe_sink(sum);
        };
        probe.sketch_probe.scalar_seconds =
            detail::simd_probe_min_seconds(kReps, [&] { arm(sca); });
        probe.sketch_probe.simd_seconds =
            detail::simd_probe_min_seconds(kReps, [&] { arm(vec); });
    }

    {  // radix sort: chunk-scale candidates, tie-heavy quantized weights.
        constexpr std::size_t kN = 1u << 18;
        std::vector<GreedyCandidate> input(kN);
        for (GreedyCandidate& c : input) {
            c.u = static_cast<VertexId>(rng.index(kN));
            c.v = static_cast<VertexId>(rng.index(kN));
            // Quantized weights: long equal-key plateaus, the stability-
            // sensitive shape (and the one grid streams actually emit).
            c.weight = static_cast<double>(rng.index(4096)) * 0.25;
        }
        const auto cmp = [](const GreedyCandidate& a, const GreedyCandidate& b) {
            return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
        };
        std::vector<GreedyCandidate> ref = input;
        std::stable_sort(ref.begin(), ref.end(), cmp);
        simd::CandidateRadixSorter sorter;
        std::vector<GreedyCandidate> got = input;
        sorter.sort(got);
        probe.radix_sort.outputs_identical =
            std::memcmp(ref.data(), got.data(), kN * sizeof(GreedyCandidate)) == 0;
        // Timed by hand rather than via simd_probe_min_seconds: each rep
        // re-copies the pristine input, and that copy must stay outside
        // the timed region of both arms.
        probe.radix_sort.scalar_seconds = std::numeric_limits<double>::infinity();
        probe.radix_sort.simd_seconds = std::numeric_limits<double>::infinity();
        std::vector<GreedyCandidate> work;
        for (int r = 0; r < kReps; ++r) {
            work = input;
            Timer sort_timer;
            std::stable_sort(work.begin(), work.end(), cmp);
            probe.radix_sort.scalar_seconds =
                std::min(probe.radix_sort.scalar_seconds, sort_timer.seconds());
            detail::simd_probe_sink(work.back().u);
            work = input;
            Timer radix_timer;
            sorter.sort(work);
            probe.radix_sort.simd_seconds =
                std::min(probe.radix_sort.simd_seconds, radix_timer.seconds());
            detail::simd_probe_sink(work.back().u);
        }
    }

    const auto finish = [](SimdKernelAblation& a) {
        a.speedup = a.simd_seconds > 0.0 ? a.scalar_seconds / a.simd_seconds : 0.0;
    };
    finish(probe.far_sweep);
    finish(probe.distance_batch);
    finish(probe.sketch_probe);
    finish(probe.radix_sort);
    return probe;
}

/// Process peak RSS in KiB (0 where unsupported). Kept as the top-level
/// JSON field's reader; per-row attribution uses before/after samples of
/// the same counter (util/rss.hpp).
inline std::size_t peak_rss_kb() { return process_peak_rss_kb(); }

inline std::string bench_json_path() {
    const char* env = std::getenv("GSP_BENCH_JSON");
    return env != nullptr ? std::string(env) : std::string("BENCH_greedy.json");
}

inline void write_bench_greedy_json(const std::string& path, const std::string& source,
                                    const std::string& instance_kind, std::size_t n,
                                    std::size_t m, double t,
                                    const std::vector<KernelRun>& runs,
                                    const MemProbeResult& mem_probe,
                                    const TimeProbeResult& time_probe,
                                    const GroupProbeResult& group_probe,
                                    const SessionProbeResult* session_probe = nullptr,
                                    const MetricProbeResult* metric_probe = nullptr,
                                    const AcceptProbeResult* accept_probe = nullptr,
                                    const SimdProbeResult* simd_probe = nullptr) {
    JsonWriter w;
    w.begin_object();
    w.member("schema", "gsp.bench_greedy.v8");
    w.member("source", source);
    w.member("stretch", t);
    w.key("instance").begin_object();
    w.member("kind", instance_kind);
    w.member("n", n);
    w.member("m", m);
    w.end_object();

    w.key("configs").begin_array();
    for (const KernelRun& r : runs) {
        const double bpc = static_cast<double>(r.stats.handoff_peak_bytes) /
                           static_cast<double>(m == 0 ? 1 : m);
        w.begin_object();
        w.member("name", r.config.name);
        w.member("bidirectional", r.config.bidirectional);
        w.member("ball_sharing", r.config.ball_sharing);
        w.member("csr_snapshot", r.config.csr_snapshot);
        w.member("bound_sketch", r.config.bound_sketch);
        w.member("threads", r.config.threads);
        w.member("seconds", r.seconds);
        w.member("edges", r.edges);
        w.member("matches_naive", r.matches_naive);
        w.member("handoff_bytes", r.stats.handoff_peak_bytes);
        w.member("bytes_per_candidate", bpc);
        w.member("rss_delta_kb", r.rss_after_kb - r.rss_before_kb);
        w.key("stats").begin_object();
        append_greedy_stats(w, r.stats);
        w.end_object();
        w.end_object();
    }
    w.end_array();

    if (metric_probe != nullptr) {
        const MetricProbeResult& p = *metric_probe;
        w.key("metric_probe").begin_object();
        w.member("kind", "euclidean_uniform");
        w.member("n", p.n);
        w.member("candidates", p.candidates);
        w.member("stretch", p.stretch);
        w.member("serial_seconds", p.serial_seconds);
        w.member("mt2_seconds", p.mt2_seconds);
        w.member("edges", p.edges);
        w.member("matches_serial", p.matches_serial);
        w.member("handoff_bytes", p.handoff_bytes);
        w.member("bytes_per_candidate", p.bytes_per_candidate);
        w.member("pr2_bytes_per_candidate", p.pr2_bytes_per_candidate);
        w.member("sketch_hits", p.stats.sketch_hits);
        w.member("repairs", p.repairs);
        w.member("repair_fallbacks", p.repair_fallbacks);
        w.member("dijkstra_runs", p.stats.dijkstra_runs);
        w.member("rss_delta_kb", p.rss_after_kb - p.rss_before_kb);
        w.end_object();
    }
    if (accept_probe != nullptr) {
        const AcceptProbeResult& p = *accept_probe;
        w.key("accept_probe").begin_object();
        w.member("kind", "clustered_geometric");
        w.member("n", p.n);
        w.member("m", p.m);
        w.member("stretch", p.stretch);
        w.member("accept_rate", p.accept_rate);
        w.member("serial_seconds", p.serial_seconds);
        w.member("mt2_seconds", p.mt2_seconds);
        w.member("edges", p.edges);
        w.member("matches_serial", p.matches_serial);
        w.member("snapshot_accepts", p.snapshot_accepts);
        w.member("repairs", p.repairs);
        w.member("repair_reprobes", p.repair_reprobes);
        w.member("repair_fallbacks", p.repair_fallbacks);
        w.member("certs_published", p.certs_published);
        w.member("cert_ball_aborts", p.cert_ball_aborts);
        w.member("repair_share", p.repair_share);
        w.member("rss_delta_kb", p.rss_after_kb - p.rss_before_kb);
        w.end_object();
    }
    if (session_probe != nullptr) {
        const SessionProbeResult& p = *session_probe;
        w.key("session_probe").begin_object();
        w.member("kind", "random_nm");
        w.member("n", p.n);
        w.member("m", p.m);
        w.member("stretch", p.stretch);
        w.member("threads", p.threads);
        w.member("builds", p.builds);
        w.member("cold_seconds", p.cold_seconds);
        w.member("warm_seconds", p.warm_seconds);
        w.member("cold_setup_seconds", p.cold_setup_seconds);
        w.member("warm_setup_seconds", p.warm_setup_seconds);
        w.member("cold_pool_constructions", p.cold_pool_constructions);
        w.member("cold_workspace_constructions", p.cold_workspace_constructions);
        w.member("warm_pool_constructions", p.warm_pool_constructions);
        w.member("warm_workspace_constructions", p.warm_workspace_constructions);
        w.member("matches", p.matches);
        w.member("rss_delta_kb", p.rss_after_kb - p.rss_before_kb);
        w.end_object();
    }

    {
        const MemProbeResult& p = mem_probe;
        w.key("mem_probe").begin_object();
        w.member("kind", "grid_stream");
        w.member("n", p.n);
        w.member("stretch", p.stretch);
        w.member("separation", p.separation);
        w.member("rss_budget_kb", p.rss_budget_kb);
        w.member("rss_before_kb", p.rss_before_kb);
        w.member("within_budget", p.within_budget);
        w.key("instances").begin_array();
        for (const MemProbeInstance& inst : p.instances) {
            w.begin_object();
            w.member("kind", inst.kind);
            w.member("gen_seconds", inst.gen_seconds);
            w.member("build_seconds", inst.build_seconds);
            w.member("edges", inst.edges);
            w.member("weight", inst.weight);
            w.member("stretch_target", inst.stretch_target);
            w.member("candidates_streamed", inst.candidates_streamed);
            w.member("candidate_buffer_peak_bytes", inst.candidate_buffer_peak_bytes);
            w.member("rss_before_kb", inst.rss_before_kb);
            w.member("rss_after_kb", inst.rss_after_kb);
            w.member("rss_delta_kb", inst.rss_after_kb - inst.rss_before_kb);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    {
        const TimeProbeResult& p = time_probe;
        w.key("time_probe").begin_object();
        w.member("kind", "grid_stream_uniform");
        w.member("n", p.n);
        w.member("stretch", p.stretch);
        w.member("separation", p.separation);
        w.member("gen_seconds", p.gen_seconds);
        w.member("grid_seconds", p.grid_seconds);
        w.member("build_seconds", p.build_seconds);
        w.member("edges", p.edges);
        w.member("candidates", p.candidates);
        w.member("us_per_candidate", p.us_per_candidate);
        w.member("cell_balls", p.cell_balls);
        w.member("cell_ball_decisions", p.cell_ball_decisions);
        w.member("coarse_rejects", p.coarse_rejects);
        w.member("cell_ball_share", p.cell_ball_share);
        w.member("dijkstra_runs", p.dijkstra_runs);
        w.member("simd_backend", p.simd_backend);
        w.end_object();
    }

    {
        const auto write_arm = [&w](const char* key, const GroupProbeArm& a) {
            w.key(key).begin_object();
            w.member("kind", a.kind);
            w.member("n", a.n);
            w.member("m", a.m);
            w.member("stretch", a.stretch);
            w.member("candidates", a.candidates);
            w.member("off_seconds", a.off_seconds);
            w.member("on_seconds", a.on_seconds);
            w.member("off_us_per_candidate", a.off_us_per_candidate);
            w.member("on_us_per_candidate", a.on_us_per_candidate);
            w.member("speedup", a.speedup);
            w.member("matches_off", a.matches_off);
            w.member("group_probes", a.group_probes);
            w.member("group_probe_decisions", a.group_probe_decisions);
            w.member("group_probe_early_exits", a.group_probe_early_exits);
            w.member("mean_group_size", a.mean_group_size);
            w.member("early_exit_share", a.early_exit_share);
            w.member("rss_delta_kb", a.rss_after_kb - a.rss_before_kb);
            w.member("simd_backend", a.simd_backend);
            w.end_object();
        };
        w.key("group_probe").begin_object();
        write_arm("metric", group_probe.metric);
        write_arm("graph", group_probe.graph);
        w.end_object();
    }

    if (simd_probe != nullptr) {
        const SimdProbeResult& p = *simd_probe;
        const auto write_kernel = [&w](const char* key, const SimdKernelAblation& a) {
            w.key(key).begin_object();
            w.member("scalar_seconds", a.scalar_seconds);
            w.member("simd_seconds", a.simd_seconds);
            w.member("speedup", a.speedup);
            w.member("outputs_identical", a.outputs_identical);
            w.end_object();
        };
        w.key("simd_probe").begin_object();
        w.member("backend", p.backend);
        write_kernel("far_sweep", p.far_sweep);
        write_kernel("distance_batch", p.distance_batch);
        write_kernel("sketch_probe", p.sketch_probe);
        write_kernel("radix_sort", p.radix_sort);
        w.end_object();
    }

    w.member("peak_rss_kb", peak_rss_kb());
    // Named lookups: the ladder may append parallel rows after "full", so
    // ratios reference configs by name rather than position.
    const auto seconds_of = [&runs](const std::string& name) -> double {
        for (const KernelRun& r : runs) {
            if (name == r.config.name) return r.seconds;
        }
        return 0.0;
    };
    const double naive_s = runs.front().seconds;
    const double full_s = seconds_of("full");
    const double mt_s = seconds_of("full+mt4");
    w.member("speedup_full_vs_naive", full_s > 0.0 ? naive_s / full_s : 0.0);
    w.member("speedup_parallel_vs_full",
             mt_s > 0.0 && full_s > 0.0 ? full_s / mt_s : 0.0);
    w.end_object();

    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << w.str() << "\n";
}

}  // namespace gsp::benchutil
