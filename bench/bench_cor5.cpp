// Corollary 5 experiment: for any 0 < delta < 1 the greedy
// O(log n / delta)-spanner has O(n) edges and lightness at most 1 + delta.
//
// (The corollary plugs the [BFN16] reduction into Theorem 4.) We run the
// greedy with t = 2 log2(n) / delta and check that the spanner is tree-like
// (edges ~ n) and within a (1+delta) factor of the MST weight.
#include <cmath>
#include <iostream>

#include "analysis/audit.hpp"
#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    std::cout << "== Corollary 5: almost-MST-weight spanners at logarithmic stretch ==\n"
              << "G(n, m = 16n), U[1,2] weights; t = 2 log2(n) / delta\n\n";

    Table table({"n", "delta", "t", "|H|", "|H|/n", "lightness", "1+delta", "ok"});
    for (std::size_t n : {512u, 1024u, 2048u}) {
        for (double delta : {0.1, 0.25, 0.5, 1.0}) {
            Rng rng(77 * n + static_cast<std::uint64_t>(delta * 100));
            const Graph g = random_graph_nm(n, 16 * n, {.lo = 1.0, .hi = 2.0}, rng);
            const double t = 2.0 * std::log2(static_cast<double>(n)) / delta;
            const Graph h = greedy_spanner(g, t);
            const SpannerAudit a = audit_graph_spanner(g, h);
            table.add_row({std::to_string(n), fmt(delta), fmt(t, 1),
                           std::to_string(a.edges),
                           fmt(static_cast<double>(a.edges) / static_cast<double>(n), 3),
                           fmt(a.lightness, 4), fmt(1.0 + delta),
                           a.lightness <= 1.0 + delta ? "yes" : "NO"});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper expectation: every row ends in ok=yes -- the greedy at "
                 "stretch O(log n / delta)\nweighs at most (1+delta) * MST and keeps "
                 "O(n) edges. (Greedy inherits [BFN16] via Theorem 4.)\n";
    return 0;
}
