// Ablations of this implementation's own design choices (DESIGN.md §2.3),
// so each engineering decision is backed by a measurement:
//   A. Farshi-Gudmundsson distance cache in the metric greedy
//      (identical output -- how much time does it actually save?);
//   B. cluster-oracle fast path in approximate-greedy
//      (identical output -- share of queries short-circuited, time saved);
//   C. theta-graph base cone count for approximate-greedy
//      (base quality vs final spanner quality);
//   D. the paper-Remark alternative to Theorem 6: reroute the greedy (light,
//      possibly huge-degree) spanner through a bounded-degree spanner, and
//      compare with approximate-greedy on the degree-blowup metric.
#include <iostream>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/hard_instances.hpp"
#include "gen/points.hpp"
#include "spanners/net_spanner.hpp"
#include "spanners/reroute.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Metric greedy through the unified API; cached = full engine, naive =
/// everything off.
gsp::Graph metric_greedy_with(const gsp::MetricSpace& m, double t, bool cached,
                              gsp::GreedyStats* stats = nullptr) {
    gsp::SpannerSession session;
    gsp::BuildOptions options;
    options.stretch = t;
    if (!cached) options.engine = gsp::EngineTuning::naive();
    gsp::MetricCandidateSource source(m);
    gsp::BuildReport report;
    gsp::Graph h = session.build(source, options, &report);
    if (stats != nullptr) {
        *stats = report.stats;
        stats->seconds = report.seconds;
    }
    return h;
}

gsp::ApproxGreedyResult approx_with(const gsp::MetricSpace& m,
                                    const gsp::ApproxParams& params) {
    gsp::SpannerSession session;
    gsp::BuildOptions options;
    options.approx = params;
    return gsp::approx_greedy_build(session, m, options);
}

}  // namespace

int main() {
    using namespace gsp;

    std::cout << "== A. FG distance cache in the exact metric greedy ==\n";
    {
        Table t({"n", "naive dijkstras", "cached dijkstras", "saved", "naive s",
                 "cached s", "speedup"});
        for (std::size_t n : {256u, 512u, 1024u}) {
            Rng rng(3 * n);
            const EuclideanMetric pts =
                uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
            GreedyStats naive, cached;
            (void)metric_greedy_with(pts, 1.5, /*cached=*/false, &naive);
            (void)metric_greedy_with(pts, 1.5, /*cached=*/true, &cached);
            t.add_row({std::to_string(n), std::to_string(naive.dijkstra_runs),
                       std::to_string(cached.dijkstra_runs),
                       fmt(100.0 * (1.0 - static_cast<double>(cached.dijkstra_runs) /
                                              static_cast<double>(naive.dijkstra_runs)),
                           1) + "%",
                       fmt(naive.seconds, 3), fmt(cached.seconds, 3),
                       fmt_ratio(naive.seconds / cached.seconds)});
        }
        t.print(std::cout);
    }

    std::cout << "\n== B. Cluster-oracle fast path in approximate-greedy ==\n";
    {
        Table t({"n", "oracle off (s)", "oracle on (s)", "speedup", "queries skipped"});
        for (std::size_t n : {4096u, 16384u}) {
            Rng rng(5 * n + 1);
            const EuclideanMetric pts =
                uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
            const auto off =
                approx_with(pts, ApproxParams{.epsilon = 0.5,
                                              .theta_cones_override = 16,
                                              .use_cluster_oracle = false});
            const auto on =
                approx_with(pts, ApproxParams{.epsilon = 0.5,
                                              .theta_cones_override = 16,
                                              .use_cluster_oracle = true});
            t.add_row({std::to_string(n), fmt(off.seconds_total, 2),
                       fmt(on.seconds_total, 2),
                       fmt_ratio(off.seconds_total / on.seconds_total),
                       fmt(100.0 * static_cast<double>(on.oracle_rejects) /
                               static_cast<double>(on.oracle_rejects + on.exact_queries),
                           1) + "%"});
        }
        t.print(std::cout);
        std::cout << "(outputs are bit-identical either way; asserted in the test suite)\n";
    }

    std::cout << "\n== C. Base-spanner quality (theta cones) vs final spanner ==\n";
    {
        Rng rng(77);
        const EuclideanMetric pts = uniform_points(4096, 2, 640.0, rng);
        Table t({"cones", "base edges", "base stretch", "|H|", "lightness",
                 "final stretch", "secs"});
        for (std::size_t k : {10u, 16u, 24u, 40u}) {
            const auto r =
                approx_with(pts, ApproxParams{.epsilon = 0.5, .theta_cones_override = k});
            const double base_stretch = max_stretch_metric_sampled(pts, r.base, 32, 3);
            const double final_stretch =
                max_stretch_metric_sampled(pts, r.spanner, 32, 3);
            const double lightness = r.spanner.total_weight() / metric_mst_weight(pts);
            t.add_row({std::to_string(k), std::to_string(r.base.num_edges()),
                       fmt(base_stretch, 3), std::to_string(r.spanner.num_edges()),
                       fmt(lightness, 3), fmt(final_stretch, 3),
                       fmt(r.seconds_total, 2)});
        }
        t.print(std::cout);
        std::cout << "(more cones: better base stretch, more candidate edges, similar "
                     "final spanner --\nthe greedy simulation absorbs base sloppiness, "
                     "which is why the override is safe)\n";
    }

    std::cout << "\n== D. Theorem 6 vs the paper-Remark alternative (degree-blowup metric) ==\n";
    {
        const std::size_t n = 128;
        const MatrixMetric star = geometric_star_metric(n, 1.7);
        Table t({"construction", "edges", "max deg", "lightness", "stretch", "secs"});
        const double mst = metric_mst_weight(star);
        {
            Timer timer;
            const Graph h = greedy_spanner_metric(star, 1.5);
            const double s = timer.seconds();
            t.add_row({"greedy (light, hub degree n-1)", std::to_string(h.num_edges()),
                       std::to_string(h.max_degree()), fmt(h.total_weight() / mst, 3),
                       fmt(max_stretch_metric(star, h), 3), fmt(s, 3)});
        }
        {
            Timer timer;
            const Graph h1 = greedy_spanner_metric(star, 1.22);  // sqrt(1.5) budget
            const Graph h2 =
                net_spanner(star, NetSpannerOptions{.epsilon = 0.22, .degree_cap = 12});
            const Graph h = reroute_through(h1, h2);
            const double s = timer.seconds();
            t.add_row({"Remark: greedy rerouted via bounded-degree",
                       std::to_string(h.num_edges()), std::to_string(h.max_degree()),
                       fmt(h.total_weight() / mst, 3),
                       fmt(max_stretch_metric(star, h), 3), fmt(s, 3)});
        }
        {
            Timer timer;
            const auto r =
                approx_with(star, ApproxParams{.epsilon = 0.5, .net_degree_cap = 16});
            const double s = timer.seconds();
            t.add_row({"Theorem 6: approximate-greedy",
                       std::to_string(r.spanner.num_edges()),
                       std::to_string(r.spanner.max_degree()),
                       fmt(r.spanner.total_weight() / mst, 3),
                       fmt(max_stretch_metric(star, r.spanner), 3), fmt(s, 3)});
        }
        t.print(std::cout);
        std::cout << "(both achieve bounded degree + light weight; the Remark route "
                     "needs the exact greedy\nfirst -- quadratic -- which is exactly the "
                     "drawback the paper's Remark calls out)\n";
    }
    return 0;
}
