// Theorem 6 experiment: Algorithm Approximate-Greedy computes a
// (1+eps)-spanner with constant lightness and degree in O(n log n) time.
//
// Columns to check against the paper:
//   * runtime: fitted exponent of seconds vs n ~ 1 (near-linear; the exact
//     greedy's is ~2, see bench_runtime);
//   * lightness and degree: flat in n;
//   * stretch: measured (sampled) <= 1 + eps.
// The 2D base spanner is a theta graph with a practical cone count; the
// stretch column certifies the measured behaviour (DESIGN.md §2.3).
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/approx_greedy.hpp"
#include "gen/points.hpp"
#include "graph/mst.hpp"
#include "metric/metric_space.hpp"
#include "util/fit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    const double eps = 0.5;
    std::cout << "== Theorem 6: approximate-greedy in O(n log n) time ==\n"
              << "uniform 2D points, eps = " << eps
              << ", theta-graph base (16 cones), cluster-oracle fast path on\n\n";

    Table table({"n", "base |E'|", "|H|", "|H|/n", "lightness", "max deg",
                 "stretch(sampled)", "oracle rejects", "exact queries", "base s",
                 "total s"});
    std::vector<double> ns, secs;
    for (std::size_t n : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u, 65536u}) {
        Rng rng(5 * n + 1);
        const double extent = std::sqrt(static_cast<double>(n)) * 10.0;
        const EuclideanMetric pts = uniform_points(n, 2, extent, rng);
        SpannerSession session;
        BuildOptions options;
        options.approx.epsilon = eps;
        options.approx.theta_cones_override = 16;
        const ApproxGreedyResult r = approx_greedy_build(session, pts, options);
        const double stretch = max_stretch_metric_sampled(pts, r.spanner, 48, 99);
        const double lightness = r.spanner.total_weight() / metric_mst_weight(pts);
        ns.push_back(static_cast<double>(n));
        secs.push_back(r.seconds_total);
        table.add_row(
            {std::to_string(n), std::to_string(r.base.num_edges()),
             std::to_string(r.spanner.num_edges()),
             fmt(static_cast<double>(r.spanner.num_edges()) / static_cast<double>(n), 3),
             fmt(lightness, 3), std::to_string(r.spanner.max_degree()), fmt(stretch, 3),
             std::to_string(r.oracle_rejects), std::to_string(r.exact_queries),
             fmt(r.seconds_base, 2), fmt(r.seconds_total, 2)});
    }
    table.print(std::cout);
    const PowerFit fit = fit_power_law(ns, secs);
    std::cout << "\nfitted runtime ~ n^" << fmt(fit.exponent, 2) << " (R^2 "
              << fmt(fit.r_squared, 3)
              << "); paper: O(n log n), i.e. exponent ~1 vs the exact greedy's ~2 "
                 "(bench_runtime).\nLightness, degree and |H|/n must be flat; stretch "
                 "<= 1 + eps = "
              << fmt(1.0 + eps) << ".\n";
    return 0;
}
