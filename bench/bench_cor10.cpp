// Corollary 10 / Theorem 5 experiment: in doubling metrics the greedy
// (1+eps)-spanner has n * eps^{-O(ddim)} edges and lightness
// (ddim/eps)^{O(ddim)} -- both *constant in n*.
//
// Before this paper the best greedy analysis [Smi09] gave lightness
// O(log n); the experiment's point is the flatness of the lightness column
// against the growing log2(n) column.
#include <cmath>
#include <iostream>

#include "analysis/audit.hpp"
#include "core/greedy_metric.hpp"
#include "gen/points.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
    using namespace gsp;
    std::cout << "== Corollary 10: greedy (1+eps) in doubling metrics ==\n"
              << "uniform points in [0, sqrt(n)]^2 (constant density)\n\n";

    Table table({"eps", "n", "log2 n", "|H|/n", "lightness", "max degree", "secs"});
    for (double eps : {0.25, 0.5, 1.0}) {
        for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
            Rng rng(13 * n + static_cast<std::uint64_t>(eps * 100));
            const double extent = std::sqrt(static_cast<double>(n)) * 10.0;
            const EuclideanMetric pts = uniform_points(n, 2, extent, rng);
            Timer timer;
            const Graph h = greedy_spanner_metric(pts, 1.0 + eps);
            const double secs = timer.seconds();
            const SpannerAudit a = audit_metric_spanner(pts, h);
            table.add_row({fmt(eps), std::to_string(n),
                           fmt(std::log2(static_cast<double>(n)), 1),
                           fmt(static_cast<double>(a.edges) / static_cast<double>(n), 3),
                           fmt(a.lightness, 3), std::to_string(a.max_degree),
                           fmt(secs, 2)});
        }
        std::cout << '\n';
    }
    table.print(std::cout);
    std::cout << "\nPaper expectation: for each eps, |H|/n and lightness are flat in n "
                 "(Corollary 10's constant\nbounds), even though log2(n) -- the old "
                 "[Smi09] lightness bound -- keeps growing. Degree may\ngrow on "
                 "adversarial metrics (see bench_degree) but stays modest here.\n";
    return 0;
}
