// Girth lower-bound experiment (paper §1.1/§3): on a unit-weight graph of
// girth g, *any* t-spanner with t < g - 1 must keep every edge (dropping an
// edge forces a detour of weight >= g - 1 > t). High-girth dense graphs are
// therefore the extremal family showing the greedy's O(n^{1+1/k}) size
// bound is existentially tight (Erdos girth conjecture).
//
// Instances: projective-plane incidence graphs (girth 6, m = Theta(n^{3/2})
// -- the k = 2 extremal family) and generalized Petersen graphs (girth 5+).
#include <cmath>
#include <iostream>
#include <vector>

#include "core/greedy.hpp"
#include "gen/incidence.hpp"
#include "gen/named_graphs.hpp"
#include "graph/girth.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    const double t = 3.0;
    std::cout << "== High-girth instances: any t-spanner (t=3 < girth-1) keeps all edges ==\n\n";

    Table table({"instance", "n", "m", "girth", "greedy edges", "kept all", "m/n^1.5"});
    std::vector<double> ns, ms;
    for (std::size_t q : {2u, 3u, 5u, 7u, 11u}) {
        const Graph g = projective_plane_incidence(q);
        const Graph h = greedy_spanner(g, t);
        const double n_d = static_cast<double>(g.num_vertices());
        ns.push_back(n_d);
        ms.push_back(static_cast<double>(g.num_edges()));
        table.add_row({"PG(2," + std::to_string(q) + ") incidence",
                       std::to_string(g.num_vertices()), std::to_string(g.num_edges()),
                       std::to_string(unweighted_girth(g)),
                       std::to_string(h.num_edges()),
                       h.num_edges() == g.num_edges() ? "yes" : "NO",
                       fmt(static_cast<double>(g.num_edges()) / std::pow(n_d, 1.5), 3)});
    }
    for (std::size_t n : {5u, 9u, 13u}) {
        const Graph g = generalized_petersen(n, 2);
        const Graph h = greedy_spanner(g, t);
        table.add_row({"GP(" + std::to_string(n) + ",2)",
                       std::to_string(g.num_vertices()), std::to_string(g.num_edges()),
                       std::to_string(unweighted_girth(g)),
                       std::to_string(h.num_edges()),
                       h.num_edges() == g.num_edges() ? "yes" : "NO",
                       fmt(static_cast<double>(g.num_edges()) /
                               std::pow(static_cast<double>(g.num_vertices()), 1.5),
                           3)});
    }
    table.print(std::cout);

    const PowerFit fit = fit_power_law(ns, ms);
    std::cout << "\nincidence family: fitted m ~ n^" << fmt(fit.exponent, 3) << " (R^2 "
              << fmt(fit.r_squared, 3)
              << "); theory: exactly Theta(n^{3/2}) -- the k=2 girth-conjecture "
                 "extremal density.\nEvery 'kept all' column must read yes: on these "
                 "instances the greedy spanner *is* the\ninstance optimum, which is how "
                 "existential optimality becomes tight.\n";
    return 0;
}
