// Micro-benchmarks (google-benchmark) for the inner loops everything else
// is built from: limited Dijkstra (one- and two-sided), CSR snapshots, MST,
// net hierarchy, quadtree, WSPD, theta graph, greedy engine configurations.
//
// main() additionally runs a small greedy-kernel sweep and writes the
// BENCH_greedy.json artifact before the registered benchmarks execute, so
// CI can smoke-validate the schema cheaply:
//   ./bench_micro --benchmark_filter='^$'   # JSON only, no benchmarks
#include <benchmark/benchmark.h>

#include <iostream>

#include "greedy_kernel_bench.hpp"

#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/greedy.hpp"
#include "core/greedy_engine.hpp"
#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/csr_view.hpp"
#include "graph/incremental_csr.hpp"
#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "nets/net_hierarchy.hpp"
#include "spanners/theta_graph.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "wspd/quadtree.hpp"
#include "wspd/wspd.hpp"

namespace {

using namespace gsp;

Graph make_graph(std::size_t n) {
    Rng rng(42);
    return random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
}

EuclideanMetric make_points(std::size_t n) {
    Rng rng(42);
    return uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
}

void BM_DijkstraFull(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ws.all_distances(g, s, kInfiniteWeight));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraFull)->Arg(1024)->Arg(4096);

void BM_DijkstraLimited(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        // A tight radius: the greedy's typical query shape.
        benchmark::DoNotOptimize(ws.distance(g, s, (s + 7) % g.num_vertices(), 3.0));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraLimited)->Arg(1024)->Arg(4096);

void BM_DijkstraBidirectional(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ws.distance_bidirectional(g, s, (s + 7) % g.num_vertices(), 3.0));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraBidirectional)->Arg(1024)->Arg(4096);

void BM_DijkstraLimitedCsr(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    CsrOverlayView view;
    view.snapshot(g);
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ws.distance(view, s, (s + 7) % g.num_vertices(), 3.0));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraLimitedCsr)->Arg(1024)->Arg(4096);

void BM_CsrSnapshotRebuild(benchmark::State& state) {
    // Mirror one insertion between snapshots: the no-insertion fast path
    // would otherwise turn every iteration after the first into an O(1)
    // no-op and the benchmark would stop measuring the rebuild.
    Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    CsrOverlayView view;
    view.snapshot(g);  // size the overlay before mirroring insertions
    VertexId u = 0;
    for (auto _ : state) {
        const EdgeId id = g.add_edge(u, u + 1, 1.0);
        view.add_edge(u, u + 1, 1.0, id);
        u = (u + 2) % static_cast<VertexId>(g.num_vertices() - 1);
        view.snapshot(g);
        benchmark::DoNotOptimize(view.num_vertices());
    }
}
BENCHMARK(BM_CsrSnapshotRebuild)->Arg(1024)->Arg(4096);

void BM_IncrementalCsrMirrorInsert(benchmark::State& state) {
    // The replacement cost model: mirroring one accepted edge into the
    // gap-buffered incremental view (amortized O(1)) vs the full rebuild
    // above.
    Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    IncrementalCsrView view;
    view.refresh(g);
    VertexId u = 0;
    for (auto _ : state) {
        const EdgeId id = g.add_edge(u, u + 1, 1.0);
        view.add_edge(u, u + 1, 1.0, id);
        u = (u + 2) % static_cast<VertexId>(g.num_vertices() - 1);
        benchmark::DoNotOptimize(view.num_half_edges());
    }
}
BENCHMARK(BM_IncrementalCsrMirrorInsert)->Arg(1024)->Arg(4096);

void BM_KruskalMst(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(kruskal_mst(g));
}
BENCHMARK(BM_KruskalMst)->Arg(1024)->Arg(4096);

void BM_NetHierarchy(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(NetHierarchy(pts).num_levels());
}
BENCHMARK(BM_NetHierarchy)->Arg(1024)->Arg(4096);

void BM_QuadTree(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(QuadTree(pts).num_nodes());
}
BENCHMARK(BM_QuadTree)->Arg(1024)->Arg(4096);

void BM_Wspd(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    const QuadTree tree(pts);
    for (auto _ : state) benchmark::DoNotOptimize(well_separated_pairs(tree, 4.0).size());
}
BENCHMARK(BM_Wspd)->Arg(1024)->Arg(4096);

void BM_ThetaGraph(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(theta_graph(pts, 12).num_edges());
}
BENCHMARK(BM_ThetaGraph)->Arg(512)->Arg(2048);

void BM_GreedyGraph(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(greedy_spanner(g, 3.0).num_edges());
}
BENCHMARK(BM_GreedyGraph)->Arg(512)->Arg(1024);

void BM_GreedyGraphNaive(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    BuildOptions options;
    options.stretch = 3.0;
    options.engine = EngineTuning::naive();
    SpannerSession session;
    GraphCandidateSource source(g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.build(source, options).num_edges());
    }
}
BENCHMARK(BM_GreedyGraphNaive)->Arg(512)->Arg(1024);

void BM_SessionWarmBuild(benchmark::State& state) {
    // The request-serving shape: repeated parallel builds on one warm
    // session (zero pool / workspace construction per iteration).
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    BuildOptions options;
    options.stretch = 3.0;
    options.engine.num_threads = 2;
    SpannerSession session;
    GraphCandidateSource source(g);
    benchmark::DoNotOptimize(session.build(source, options).num_edges());  // prime
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.build(source, options).num_edges());
    }
}
BENCHMARK(BM_SessionWarmBuild)->Arg(512)->Arg(1024);

void BM_GreedyMetricCached(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(greedy_spanner_metric(pts, 1.5).num_edges());
    }
}
BENCHMARK(BM_GreedyMetricCached)->Arg(256)->Arg(512);

/// The ROADMAP's bound-sketch tuning item: hit rate vs associativity on
/// the metric probe shape (clustered points, cached engine). The sketch's
/// value is cross-bucket rejects remembered in O(n * ways) memory; more
/// ways keep more sources per vertex before evictions, at proportional
/// memory and probe cost.
void sketch_ways_section() {
    const std::size_t n = 512;
    const double t = 1.5;
    std::cout << "== BoundSketch associativity sweep (metric probe, n=" << n
              << ", t=" << t << ") ==\n";
    gsp::Table table({"kWays", "sketch hits", "hit rate (per candidate)", "dijkstra runs",
                      "seconds"});
    const double m = static_cast<double>(n * (n - 1) / 2);
    for (const std::size_t ways : {2u, 4u, 8u}) {
        Rng rng(1234);
        const EuclideanMetric pts = clustered_points(n, 2, 8, 60.0, 2.0, rng);
        SpannerSession session;
        MetricCandidateSource source(pts);
        BuildOptions options;
        options.stretch = t;
        options.engine.sketch_ways = ways;
        BuildReport report;
        (void)session.build(source, options, &report);
        table.add_row({std::to_string(ways), std::to_string(report.stats.sketch_hits),
                       gsp::fmt(static_cast<double>(report.stats.sketch_hits) / m, 4),
                       std::to_string(report.stats.dijkstra_runs),
                       gsp::fmt(report.seconds, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

/// Quick kernel sweep + session-reuse probe + the reduced linear-space
/// memory probe + BENCH_greedy.json, sized for a CI smoke run. Including
/// the session probe here means every PR's smoke job counter-verifies the
/// warm-start contract (the validator fails on any warm pool / workspace
/// construction); including the n = 10^5 memory probe (GSP_MEM_PROBE_N
/// overrides) means every PR certifies the chunked pipeline's linear RSS
/// budget before the full 10^6 history run on main.
void write_smoke_json() {
    Rng rng(42);
    const std::size_t n = 512;
    const Graph g = random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
    const double t = 2.0;
    const auto runs = benchutil::run_kernel_sweep(g, t);
    const auto session_probe = benchutil::run_session_probe(n, t, 2, 4);
    const auto mem_probe = benchutil::run_mem_probe(benchutil::mem_probe_n(100'000));
    const auto time_probe = benchutil::run_time_probe(benchutil::time_probe_n(100'000));
    const std::string path = benchutil::bench_json_path();
    benchutil::write_bench_greedy_json(path, "bench_micro", "random_nm", n,
                                       g.num_edges(), t, runs, mem_probe, time_probe,
                                       &session_probe);
    bool all_match = true;
    for (const auto& r : runs) all_match = all_match && r.matches_naive;
    std::size_t mem_high_kb = 0;
    for (const auto& inst : mem_probe.instances) {
        mem_high_kb = std::max(mem_high_kb,
                               inst.rss_after_kb - mem_probe.rss_before_kb);
    }
    std::cout << "wrote " << path << " (smoke sweep, n=" << n
              << ", edge sets " << (all_match ? "identical" : "MISMATCHED")
              << ", warm session constructions "
              << session_probe.warm_pool_constructions << "/"
              << session_probe.warm_workspace_constructions
              << "; mem probe n=" << mem_probe.n << " rss +" << mem_high_kb
              << " KiB of " << mem_probe.rss_budget_kb << " KiB budget, "
              << (mem_probe.within_budget ? "within budget" : "OVER BUDGET")
              << "; time probe n=" << time_probe.n << " "
              << time_probe.us_per_candidate << " us/candidate, cell-ball share "
              << time_probe.cell_ball_share << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
    write_smoke_json();
    sketch_ways_section();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
