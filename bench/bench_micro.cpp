// Micro-benchmarks (google-benchmark) for the inner loops everything else
// is built from: limited Dijkstra (one- and two-sided), CSR snapshots, MST,
// net hierarchy, quadtree, WSPD, theta graph, greedy engine configurations.
//
// main() additionally runs a small greedy-kernel sweep and writes the
// BENCH_greedy.json artifact before the registered benchmarks execute, so
// CI can smoke-validate the schema cheaply:
//   ./bench_micro --benchmark_filter='^$'   # JSON only, no benchmarks
#include <benchmark/benchmark.h>

#include <iostream>

#include "greedy_kernel_bench.hpp"

#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/greedy.hpp"
#include "core/greedy_engine.hpp"
#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/csr_view.hpp"
#include "graph/incremental_csr.hpp"
#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "nets/net_hierarchy.hpp"
#include "spanners/theta_graph.hpp"
#include "util/bucket_queue.hpp"
#include "util/dary_heap.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wspd/quadtree.hpp"
#include "wspd/wspd.hpp"

namespace {

using namespace gsp;

Graph make_graph(std::size_t n) {
    Rng rng(42);
    return random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
}

EuclideanMetric make_points(std::size_t n) {
    Rng rng(42);
    return uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
}

void BM_DijkstraFull(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ws.all_distances(g, s, kInfiniteWeight));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraFull)->Arg(1024)->Arg(4096);

void BM_DijkstraLimited(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        // A tight radius: the greedy's typical query shape.
        benchmark::DoNotOptimize(ws.distance(g, s, (s + 7) % g.num_vertices(), 3.0));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraLimited)->Arg(1024)->Arg(4096);

void BM_DijkstraBidirectional(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ws.distance_bidirectional(g, s, (s + 7) % g.num_vertices(), 3.0));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraBidirectional)->Arg(1024)->Arg(4096);

void BM_DijkstraLimitedCsr(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    CsrOverlayView view;
    view.snapshot(g);
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ws.distance(view, s, (s + 7) % g.num_vertices(), 3.0));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraLimitedCsr)->Arg(1024)->Arg(4096);

void BM_CsrSnapshotRebuild(benchmark::State& state) {
    // Mirror one insertion between snapshots: the no-insertion fast path
    // would otherwise turn every iteration after the first into an O(1)
    // no-op and the benchmark would stop measuring the rebuild.
    Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    CsrOverlayView view;
    view.snapshot(g);  // size the overlay before mirroring insertions
    VertexId u = 0;
    for (auto _ : state) {
        const EdgeId id = g.add_edge(u, u + 1, 1.0);
        view.add_edge(u, u + 1, 1.0, id);
        u = (u + 2) % static_cast<VertexId>(g.num_vertices() - 1);
        view.snapshot(g);
        benchmark::DoNotOptimize(view.num_vertices());
    }
}
BENCHMARK(BM_CsrSnapshotRebuild)->Arg(1024)->Arg(4096);

void BM_IncrementalCsrMirrorInsert(benchmark::State& state) {
    // The replacement cost model: mirroring one accepted edge into the
    // gap-buffered incremental view (amortized O(1)) vs the full rebuild
    // above.
    Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    IncrementalCsrView view;
    view.refresh(g);
    VertexId u = 0;
    for (auto _ : state) {
        const EdgeId id = g.add_edge(u, u + 1, 1.0);
        view.add_edge(u, u + 1, 1.0, id);
        u = (u + 2) % static_cast<VertexId>(g.num_vertices() - 1);
        benchmark::DoNotOptimize(view.num_half_edges());
    }
}
BENCHMARK(BM_IncrementalCsrMirrorInsert)->Arg(1024)->Arg(4096);

void BM_KruskalMst(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(kruskal_mst(g));
}
BENCHMARK(BM_KruskalMst)->Arg(1024)->Arg(4096);

void BM_NetHierarchy(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(NetHierarchy(pts).num_levels());
}
BENCHMARK(BM_NetHierarchy)->Arg(1024)->Arg(4096);

void BM_QuadTree(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(QuadTree(pts).num_nodes());
}
BENCHMARK(BM_QuadTree)->Arg(1024)->Arg(4096);

void BM_Wspd(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    const QuadTree tree(pts);
    for (auto _ : state) benchmark::DoNotOptimize(well_separated_pairs(tree, 4.0).size());
}
BENCHMARK(BM_Wspd)->Arg(1024)->Arg(4096);

void BM_ThetaGraph(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(theta_graph(pts, 12).num_edges());
}
BENCHMARK(BM_ThetaGraph)->Arg(512)->Arg(2048);

void BM_GreedyGraph(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(greedy_spanner(g, 3.0).num_edges());
}
BENCHMARK(BM_GreedyGraph)->Arg(512)->Arg(1024);

void BM_GreedyGraphNaive(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    BuildOptions options;
    options.stretch = 3.0;
    options.engine = EngineTuning::naive();
    SpannerSession session;
    GraphCandidateSource source(g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.build(source, options).num_edges());
    }
}
BENCHMARK(BM_GreedyGraphNaive)->Arg(512)->Arg(1024);

void BM_SessionWarmBuild(benchmark::State& state) {
    // The request-serving shape: repeated parallel builds on one warm
    // session (zero pool / workspace construction per iteration).
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    BuildOptions options;
    options.stretch = 3.0;
    options.engine.num_threads = 2;
    SpannerSession session;
    GraphCandidateSource source(g);
    benchmark::DoNotOptimize(session.build(source, options).num_edges());  // prime
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.build(source, options).num_edges());
    }
}
BENCHMARK(BM_SessionWarmBuild)->Arg(512)->Arg(1024);

void BM_GreedyMetricCached(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(greedy_spanner_metric(pts, 1.5).num_edges());
    }
}
BENCHMARK(BM_GreedyMetricCached)->Arg(256)->Arg(512);

/// The ROADMAP's bound-sketch tuning item: hit rate vs associativity on
/// the metric probe shape (clustered points, cached engine). The sketch's
/// value is cross-bucket rejects remembered in O(n * ways) memory; more
/// ways keep more sources per vertex before evictions, at proportional
/// memory and probe cost.
void sketch_ways_section() {
    const std::size_t n = 512;
    const double t = 1.5;
    std::cout << "== BoundSketch associativity sweep (metric probe, n=" << n
              << ", t=" << t << ") ==\n";
    gsp::Table table({"kWays", "sketch hits", "hit rate (per candidate)", "dijkstra runs",
                      "seconds"});
    const double m = static_cast<double>(n * (n - 1) / 2);
    for (const std::size_t ways : {2u, 4u, 8u}) {
        Rng rng(1234);
        const EuclideanMetric pts = clustered_points(n, 2, 8, 60.0, 2.0, rng);
        SpannerSession session;
        MetricCandidateSource source(pts);
        BuildOptions options;
        options.stretch = t;
        options.engine.sketch_ways = ways;
        BuildReport report;
        (void)session.build(source, options, &report);
        table.add_row({std::to_string(ways), std::to_string(report.stats.sketch_hits),
                       gsp::fmt(static_cast<double>(report.stats.sketch_hits) / m, 4),
                       std::to_string(report.stats.dijkstra_runs),
                       gsp::fmt(report.seconds, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

/// Priority-queue policies for the bounded-probe ablation below: the same
/// radius-limited Dijkstra loop parameterized only by the queue, so the
/// measured delta is purely the queue swap.
struct BucketQueuePolicy {
    static constexpr const char* kName = "bucket queue (BatchedProbe)";
    BucketQueue q;
    void start(Weight limit) { q.reset(limit, 256); }
    void push(Weight key, VertexId v) { q.push(key, v); }
    [[nodiscard]] bool empty() const { return q.empty(); }
    std::pair<Weight, VertexId> pop() {
        const BucketQueue::Item item = q.pop_min();
        return {item.key, item.vertex};
    }
};

template <std::size_t Arity>
struct DaryHeapPolicy {
    static constexpr const char* kName = Arity == 2   ? "2-ary heap"
                                         : Arity == 4 ? "4-ary heap (DijkstraWorkspace)"
                                                      : "8-ary heap";
    struct Item {
        Weight key;
        VertexId v;
        friend bool operator>(const Item& a, const Item& b) { return a.key > b.key; }
    };
    DaryHeap<Item, Arity> q;
    void start(Weight) { q.clear(); }
    void push(Weight key, VertexId v) { q.push({key, v}); }
    [[nodiscard]] bool empty() const { return q.empty(); }
    std::pair<Weight, VertexId> pop() {
        const Item item = q.pop_min();
        return {item.key, item.v};
    }
};

struct QueueProbeRun {
    double seconds = 0.0;
    std::size_t settled = 0;  ///< non-stale pops: identical across queues
};

/// One bounded Dijkstra probe per source over the whole graph -- the
/// group probe's traversal shape (nonnegative keys capped by the radius,
/// monotone pops, no decrease-key).
template <class QueuePolicy>
QueueProbeRun run_bounded_probes(const Graph& g, Weight radius) {
    const std::size_t n = g.num_vertices();
    std::vector<Weight> dist(n, 0.0);
    std::vector<std::uint64_t> stamp(n, 0);
    std::uint64_t epoch = 0;
    QueuePolicy queue;
    QueueProbeRun out;
    const Timer timer;
    for (VertexId s = 0; s < n; ++s) {
        ++epoch;
        queue.start(radius);
        dist[s] = 0.0;
        stamp[s] = epoch;
        queue.push(0.0, s);
        while (!queue.empty()) {
            const auto [d, v] = queue.pop();
            if (d > dist[v]) continue;  // stale entry
            ++out.settled;
            for (const auto& h : g.neighbors(v)) {
                const Weight nd = d + h.weight;
                if (nd > radius) continue;
                if (stamp[h.to] != epoch || nd < dist[h.to]) {
                    stamp[h.to] = epoch;
                    dist[h.to] = nd;
                    queue.push(nd, h.to);
                }
            }
        }
    }
    out.seconds = timer.seconds();
    return out;
}

/// The BatchedProbe queue ablation: the kernel asserts that bounded,
/// monotone, decrease-key-free probes want a calendar queue rather than
/// the D-ary heap DijkstraWorkspace runs; this section measures the swap
/// instead of asserting it. Two radii bracket the kernel's workload: the
/// tight point-query shape and the wider group-probe shape (a group's
/// largest undecided radius bounds its traversal).
void queue_ablation_section() {
    const std::size_t n = 4096;
    const Graph g = make_graph(n);
    const Weight kTight = 3.0;
    const Weight kWide = 6.0;
    std::cout << "== Priority-queue ablation: bounded probes, one per source (n=" << n
              << ") ==\n";
    gsp::Table table({"queue", "r=3 (s)", "speedup", "r=6 (s)", "speedup", "settled"});
    double base_tight = 0.0;
    double base_wide = 0.0;
    std::size_t settled_reference = 0;
    bool settled_agree = true;
    bool first_row = true;
    const auto row = [&](auto policy_tag) {
        using Policy = decltype(policy_tag);
        const QueueProbeRun tight = run_bounded_probes<Policy>(g, kTight);
        const QueueProbeRun wide = run_bounded_probes<Policy>(g, kWide);
        if (first_row) {
            first_row = false;
            base_tight = tight.seconds;
            base_wide = wide.seconds;
            settled_reference = tight.settled + wide.settled;
        }
        settled_agree =
            settled_agree && tight.settled + wide.settled == settled_reference;
        table.add_row({Policy::kName, gsp::fmt(tight.seconds, 3),
                       gsp::fmt_ratio(base_tight / tight.seconds),
                       gsp::fmt(wide.seconds, 3),
                       gsp::fmt_ratio(base_wide / wide.seconds),
                       std::to_string(tight.settled + wide.settled)});
    };
    row(DaryHeapPolicy<2>{});
    row(DaryHeapPolicy<4>{});
    row(DaryHeapPolicy<8>{});
    row(BucketQueuePolicy{});
    table.print(std::cout);
    std::cout << (settled_agree ? "(settled counts identical across queues)"
                                : "(SETTLED COUNT MISMATCH -- queue bug!)")
              << "\n\n";
}

/// The v8 SIMD kernel ablation: each vector kernel (and the radix chunk
/// sort) against its scalar arm on identical inputs, outputs asserted
/// identical before any timing is quoted. Printed as a table here and
/// recorded as the "simd_probe" object of BENCH_greedy.json, where the
/// validator enforces the 1.3x floor on at least two kernels whenever
/// dispatch selected a vector backend.
benchutil::SimdProbeResult simd_ablation_section() {
    const auto probe = benchutil::run_simd_probe();
    std::cout << "== SIMD kernel ablation: scalar vs dispatched (" << probe.backend
              << ") ==\n";
    gsp::Table table({"kernel", "scalar (s)", "simd (s)", "speedup", "outputs"});
    const auto row = [&](const char* name, const benchutil::SimdKernelAblation& a) {
        table.add_row({name, gsp::fmt(a.scalar_seconds, 4), gsp::fmt(a.simd_seconds, 4),
                       gsp::fmt_ratio(a.speedup),
                       a.outputs_identical ? "identical" : "MISMATCHED"});
    };
    row("far_sweep", probe.far_sweep);
    row("distance_batch", probe.distance_batch);
    row("sketch_probe", probe.sketch_probe);
    row("radix_sort (vs stable_sort)", probe.radix_sort);
    table.print(std::cout);
    std::cout << "\n";
    return probe;
}

/// Quick kernel sweep + session-reuse probe + the reduced linear-space
/// memory probe + BENCH_greedy.json, sized for a CI smoke run. Including
/// the session probe here means every PR's smoke job counter-verifies the
/// warm-start contract (the validator fails on any warm pool / workspace
/// construction); including the n = 10^5 memory probe (GSP_MEM_PROBE_N
/// overrides) means every PR certifies the chunked pipeline's linear RSS
/// budget before the full 10^6 history run on main.
void write_smoke_json() {
    Rng rng(42);
    const std::size_t n = 512;
    const Graph g = random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
    const double t = 2.0;
    const auto runs = benchutil::run_kernel_sweep(g, t);
    const auto session_probe = benchutil::run_session_probe(n, t, 2, 4);
    const auto mem_probe = benchutil::run_mem_probe(benchutil::mem_probe_n(100'000));
    const auto time_probe = benchutil::run_time_probe(benchutil::time_probe_n(100'000));
    // The v7 group-probe ablation at the reduced CI shape: the validator
    // enforces the metric arm's 1.5x us/candidate floor over the kOff
    // (PR-7 per-candidate) baseline measured in the same process.
    const auto group_probe = benchutil::run_group_probe(
        benchutil::group_probe_n(512), 1.5, 1024, 2.0);
    const auto simd_probe = simd_ablation_section();
    const std::string path = benchutil::bench_json_path();
    benchutil::write_bench_greedy_json(path, "bench_micro", "random_nm", n,
                                       g.num_edges(), t, runs, mem_probe, time_probe,
                                       group_probe, &session_probe, nullptr, nullptr,
                                       &simd_probe);
    bool all_match = true;
    for (const auto& r : runs) all_match = all_match && r.matches_naive;
    std::size_t mem_high_kb = 0;
    for (const auto& inst : mem_probe.instances) {
        mem_high_kb = std::max(mem_high_kb,
                               inst.rss_after_kb - mem_probe.rss_before_kb);
    }
    std::cout << "wrote " << path << " (smoke sweep, n=" << n
              << ", edge sets " << (all_match ? "identical" : "MISMATCHED")
              << ", warm session constructions "
              << session_probe.warm_pool_constructions << "/"
              << session_probe.warm_workspace_constructions
              << "; mem probe n=" << mem_probe.n << " rss +" << mem_high_kb
              << " KiB of " << mem_probe.rss_budget_kb << " KiB budget, "
              << (mem_probe.within_budget ? "within budget" : "OVER BUDGET")
              << "; time probe n=" << time_probe.n << " "
              << time_probe.us_per_candidate << " us/candidate, cell-ball share "
              << time_probe.cell_ball_share << "; group probe metric "
              << group_probe.metric.speedup << "x / graph "
              << group_probe.graph.speedup << "x, edge sets "
              << (group_probe.metric.matches_off && group_probe.graph.matches_off
                      ? "identical"
                      : "MISMATCHED")
              << "; simd probe " << simd_probe.backend << " far-sweep "
              << simd_probe.far_sweep.speedup << "x / dist "
              << simd_probe.distance_batch.speedup << "x / sketch "
              << simd_probe.sketch_probe.speedup << "x / radix "
              << simd_probe.radix_sort.speedup << "x, outputs "
              << (simd_probe.far_sweep.outputs_identical &&
                          simd_probe.distance_batch.outputs_identical &&
                          simd_probe.sketch_probe.outputs_identical &&
                          simd_probe.radix_sort.outputs_identical
                      ? "identical"
                      : "MISMATCHED")
              << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
    write_smoke_json();
    sketch_ways_section();
    queue_ablation_section();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
