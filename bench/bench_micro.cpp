// Micro-benchmarks (google-benchmark) for the inner loops everything else
// is built from: limited Dijkstra, MST, net hierarchy, quadtree, WSPD,
// theta graph, greedy core.
#include <benchmark/benchmark.h>

#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "nets/net_hierarchy.hpp"
#include "spanners/theta_graph.hpp"
#include "util/random.hpp"
#include "wspd/quadtree.hpp"
#include "wspd/wspd.hpp"

namespace {

using namespace gsp;

Graph make_graph(std::size_t n) {
    Rng rng(42);
    return random_graph_nm(n, 8 * n, {.lo = 1.0, .hi = 2.0}, rng);
}

EuclideanMetric make_points(std::size_t n) {
    Rng rng(42);
    return uniform_points(n, 2, std::sqrt(static_cast<double>(n)) * 10.0, rng);
}

void BM_DijkstraFull(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ws.all_distances(g, s, kInfiniteWeight));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraFull)->Arg(1024)->Arg(4096);

void BM_DijkstraLimited(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    DijkstraWorkspace ws(g.num_vertices());
    VertexId s = 0;
    for (auto _ : state) {
        // A tight radius: the greedy's typical query shape.
        benchmark::DoNotOptimize(ws.distance(g, s, (s + 7) % g.num_vertices(), 3.0));
        s = (s + 1) % g.num_vertices();
    }
}
BENCHMARK(BM_DijkstraLimited)->Arg(1024)->Arg(4096);

void BM_KruskalMst(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(kruskal_mst(g));
}
BENCHMARK(BM_KruskalMst)->Arg(1024)->Arg(4096);

void BM_NetHierarchy(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(NetHierarchy(pts).num_levels());
}
BENCHMARK(BM_NetHierarchy)->Arg(1024)->Arg(4096);

void BM_QuadTree(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(QuadTree(pts).num_nodes());
}
BENCHMARK(BM_QuadTree)->Arg(1024)->Arg(4096);

void BM_Wspd(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    const QuadTree tree(pts);
    for (auto _ : state) benchmark::DoNotOptimize(well_separated_pairs(tree, 4.0).size());
}
BENCHMARK(BM_Wspd)->Arg(1024)->Arg(4096);

void BM_ThetaGraph(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(theta_graph(pts, 12).num_edges());
}
BENCHMARK(BM_ThetaGraph)->Arg(512)->Arg(2048);

void BM_GreedyGraph(benchmark::State& state) {
    const Graph g = make_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(greedy_spanner(g, 3.0).num_edges());
}
BENCHMARK(BM_GreedyGraph)->Arg(512)->Arg(1024);

void BM_GreedyMetricCached(benchmark::State& state) {
    const EuclideanMetric pts = make_points(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(greedy_spanner_metric(pts, 1.5).num_edges());
    }
}
BENCHMARK(BM_GreedyMetricCached)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
