// Instance-optimality gap experiment (paper §1.3 discussion + Figure 1).
//
// Existential optimality explicitly does NOT mean instance optimality: the
// greedy may be beaten on a specific input by another spanner of that
// input. This bench quantifies the gap on small random graphs (exact
// optimum by branch and bound) and reports the distribution of
// greedy/OPT ratios for both size and weight.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/greedy.hpp"
#include "exact/optimal_spanner.hpp"
#include "gen/graphs.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    std::cout << "== Greedy vs exact optimum on small instances (t = 2) ==\n"
              << "20 random graphs per row; exact optimum by branch & bound\n\n";

    Table table({"instance family", "mean size ratio", "max size ratio",
                 "mean weight ratio", "max weight ratio", "greedy ever beaten"});

    const double t = 2.0;
    struct Family {
        std::string name;
        std::size_t n;
        std::size_t extra_m;
        double wlo, whi;
    };
    const std::vector<Family> families = {
        {"sparse  n=9, m=n+4, w~U[1,2]", 9, 4, 1.0, 2.0},
        {"denser  n=8, m=n+8, w~U[1,2]", 8, 8, 1.0, 2.0},
        {"spread  n=8, m=n+6, w~U[0.5,5]", 8, 6, 0.5, 5.0},
    };

    for (const Family& fam : families) {
        double sum_size = 0, max_size = 0, sum_weight = 0, max_weight = 0;
        int beaten = 0;
        const int trials = 20;
        for (int trial = 0; trial < trials; ++trial) {
            Rng rng(1000 * trial + fam.n);
            const Graph g =
                random_graph_nm(fam.n, fam.extra_m, {.lo = fam.wlo, .hi = fam.whi}, rng);
            const Graph greedy = greedy_spanner(g, t);
            const auto opt_e = optimal_spanner(g, t, SpannerObjective::kMinEdges);
            const auto opt_w = optimal_spanner(g, t, SpannerObjective::kMinWeight);
            const double sr = static_cast<double>(greedy.num_edges()) /
                              static_cast<double>(opt_e.spanner.num_edges());
            const double wr = greedy.total_weight() / opt_w.spanner.total_weight();
            sum_size += sr;
            sum_weight += wr;
            max_size = std::max(max_size, sr);
            max_weight = std::max(max_weight, wr);
            if (sr > 1.0 + 1e-12 || wr > 1.0 + 1e-9) ++beaten;
        }
        table.add_row({fam.name, fmt_ratio(sum_size / trials), fmt_ratio(max_size),
                       fmt_ratio(sum_weight / trials), fmt_ratio(max_weight),
                       std::to_string(beaten) + "/" + std::to_string(trials)});
    }
    table.print(std::cout);
    std::cout << "\nPaper expectation: ratios are usually 1x (greedy often IS optimal on "
                 "benign instances)\nbut strictly exceed 1x on some instances -- greedy is "
                 "existentially, not instance-, optimal.\nbench_fig1 shows the adversarial "
                 "construction pushing the size ratio toward 1.5x-1.67x.\n";
    return 0;
}
