#!/usr/bin/env python3
"""gsp_lint: the project's invariant linter.

One checker per contract annotation in src/util/annotations.hpp, plus two
global checks; the static-analysis CI job (and the lint_test CTest entry)
run it at zero findings over src/.

Checks
------
  gsp-hot-path-alloc   GSP_HOT_PATH function bodies must not allocate
                       (new / malloc / make_unique / make_shared) or call
                       std::stable_sort-class temporary-buffer algorithms.
  gsp-decision-pure    GSP_DECISION_PURE function bodies must not iterate
                       unordered containers, order by pointer value, or
                       consume rand/time/address entropy.
  gsp-serial-only      GSP_SERIAL_ONLY functions must not be called inside
                       a ThreadPool task body (the argument list of a
                       `*pool*.run(...)` fan-out).
  gsp-epoch-guarded    GSP_EPOCH_GUARDED fields may be touched only by the
                       translation units of their declaring class (the
                       checked accessors); `.field` / `->field` anywhere
                       else is an error.
  gsp-relaxed-atomic   `memory_order_relaxed` is allowed only in the
                       commutative verdict-bitset code of
                       src/core/prefilter_stage.hpp; every other use needs
                       an explicit suppression arguing commutativity.
  gsp-no-fma           std::fma / FMA intrinsics are banned under src/simd/
                       and inside GSP_DECISION_PURE functions: a contracted
                       arm breaks kForced == kScalar bit-identity.

Suppressions
------------
A finding is suppressed by a comment on the same line or the line above:

    // gsp-lint: allow(gsp-relaxed-atomic) monotone stats counter
    // gsp-lint: allow(all) reason...

Engines
-------
  --engine textual  (default fallback) a comment/string-stripping tokenizer
                    that keys on the annotation macro tokens directly. No
                    dependencies; what CI gates on.
  --engine clang    cursor-walking discovery over libclang (python3-clang /
                    pip `libclang`): annotations are found via the
                    annotate attributes the macros expand to under clang.
                    Pass --compdb so each file is parsed with its real
                    flags.
  --engine auto     clang when importable, else textual.

Pointing tools at the compilation database
------------------------------------------
Configure with `cmake -B build -S .` -- CMakeLists.txt sets
CMAKE_EXPORT_COMPILE_COMMANDS, so build/compile_commands.json appears
unconditionally. Then:

    python3 scripts/lint/gsp_lint.py --compdb build/compile_commands.json
    clang-tidy -p build $(git ls-files 'src/*.cpp')

Exit status: 0 on zero (unsuppressed, non-baseline) findings, 1 otherwise.
"""

from __future__ import annotations

import argparse
import bisect
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

CXX_EXTENSIONS = {".hpp", ".cpp", ".h", ".cc", ".cxx", ".hh"}

FUNCTION_MACROS = ("GSP_HOT_PATH", "GSP_DECISION_PURE", "GSP_SERIAL_ONLY")
FIELD_MACRO = "GSP_EPOCH_GUARDED"

# Files where memory_order_relaxed is legitimate without a suppression:
# the verdict bitsets' commutative fetch_or writes (and their reads).
RELAXED_WHITELIST = ("src/core/prefilter_stage.hpp",)

ALL_CHECKS = (
    "gsp-hot-path-alloc",
    "gsp-decision-pure",
    "gsp-serial-only",
    "gsp-epoch-guarded",
    "gsp-relaxed-atomic",
    "gsp-no-fma",
)

SUPPRESS_RE = re.compile(r"gsp-lint:\s*allow\(([a-z,\- ]+)\)")

# --------------------------------------------------------------- findings


class Finding:
    __slots__ = ("path", "line", "check", "message", "line_text")

    def __init__(self, path: Path, line: int, check: str, message: str,
                 line_text: str) -> None:
        self.path = path
        self.line = line
        self.check = check
        self.message = message
        self.line_text = line_text

    def render(self) -> str:
        rel = relpath(self.path)
        return f"{rel}:{self.line}: [{self.check}] {self.message}"

    def baseline_key(self) -> str:
        return f"{self.check}|{relpath(self.path)}|{self.line_text.strip()}"


def relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


# ----------------------------------------------------------- source model


class Source:
    """One file: raw text, comment/string/preproc-stripped code (same
    offsets), line table, and suppression map."""

    def __init__(self, path: Path, text: str) -> None:
        self.path = path
        self.text = text
        self.code = strip_code(text)
        self.newlines = [i for i, ch in enumerate(text) if ch == "\n"]
        self.suppressed: dict[int, set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = SUPPRESS_RE.search(line)
            if m:
                checks = {c.strip() for c in m.group(1).split(",") if c.strip()}
                # A suppression covers its own line and the next one (the
                # comment-above-the-statement form).
                for target in (lineno, lineno + 1):
                    self.suppressed.setdefault(target, set()).update(checks)

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.newlines, offset - 1) + 1

    def line_text(self, lineno: int) -> str:
        lines = self.text.splitlines()
        return lines[lineno - 1] if 1 <= lineno <= len(lines) else ""

    def is_suppressed(self, lineno: int, check: str) -> bool:
        allowed = self.suppressed.get(lineno, set())
        return check in allowed or "all" in allowed


def strip_code(text: str) -> str:
    """Blank out comments, string/char literals, and preprocessor
    directives, preserving offsets and newlines."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a: int, b: int) -> None:
        for j in range(a, b):
            if out[j] != "\n":
                out[j] = " "

    at_line_start = True
    while i < n:
        ch = text[i]
        if at_line_start and ch in " \t":
            i += 1
            continue
        if at_line_start and ch == "#":
            # Preprocessor directive, including continuation lines.
            start = i
            while i < n:
                if text[i] == "\n" and not (i > 0 and text[i - 1] == "\\"):
                    break
                i += 1
            blank(start, i)
            continue
        at_line_start = ch == "\n"
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            blank(start, i)
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            start = i
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                i += 1
            i = min(i + 2, n)
            blank(start, i)
            continue
        if ch == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                terminator = ")" + m.group(1) + '"'
                end = text.find(terminator, i + m.end())
                end = n if end < 0 else end + len(terminator)
                blank(i, end)
                i = end
                continue
        if ch in "\"'":
            start = i
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i = min(i + 1, n)
            # Keep the quotes so tokenization sees literal boundaries.
            blank(start + 1, i - 1)
            continue
        i += 1
    return "".join(out)


# ----------------------------------------------------- textual discovery


class AnnotatedFunction:
    __slots__ = ("macro", "name", "source", "line", "body")

    def __init__(self, macro: str, name: str, source: Source, line: int,
                 body: tuple[int, int] | None) -> None:
        self.macro = macro
        self.name = name
        self.source = source
        self.line = line
        self.body = body  # (open_brace, close_brace) offsets, or None


class AnnotatedField:
    __slots__ = ("name", "source", "line")

    def __init__(self, name: str, source: Source, line: int) -> None:
        self.name = name
        self.source = source
        self.line = line


IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def match_brace(code: str, open_at: int) -> int:
    depth = 0
    for i in range(open_at, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def parse_function_annotation(src: Source, macro: str,
                              at: int) -> AnnotatedFunction | None:
    """From a macro occurrence, locate the annotated function's name and
    (for definitions) its body extent."""
    code = src.code
    i = at + len(macro)
    depth = 0
    last_paren_ident = None
    last_ident = None
    while i < len(code):
        ch = code[i]
        if ch == "(":
            if depth == 0 and last_ident is not None:
                last_paren_ident = last_ident
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0:
            if ch == "{":
                if last_paren_ident is None:
                    return None
                body = (i, match_brace(code, i))
                return AnnotatedFunction(macro, last_paren_ident, src,
                                         src.line_of(at), body)
            if ch in ";}":
                if last_paren_ident is None:
                    return None
                return AnnotatedFunction(macro, last_paren_ident, src,
                                         src.line_of(at), None)
            if ch.isalpha() or ch == "_":
                m = IDENT_RE.match(code, i)
                assert m is not None
                if m.group(0) not in ("const", "noexcept", "override",
                                      "final", "constexpr", "inline",
                                      "static", "nodiscard", "maybe_unused"):
                    last_ident = m.group(0)
                i = m.end()
                continue
        i += 1
    return None


def parse_field_annotation(src: Source, at: int) -> AnnotatedField | None:
    code = src.code
    end = code.find(";", at)
    if end < 0:
        return None
    decl = code[at + len(FIELD_MACRO):end]
    for cut in ("=", "{"):
        pos = decl.find(cut)
        if pos >= 0:
            decl = decl[:pos]
    idents = [m.group(0) for m in IDENT_RE.finditer(decl)]
    if not idents:
        return None
    return AnnotatedField(idents[-1], src, src.line_of(at))


def discover_textual(sources: list[Source]):
    functions: list[AnnotatedFunction] = []
    fields: list[AnnotatedField] = []
    problems: list[Finding] = []
    for src in sources:
        for macro in FUNCTION_MACROS:
            for m in re.finditer(rf"\b{macro}\b", src.code):
                fn = parse_function_annotation(src, macro, m.start())
                if fn is None:
                    problems.append(Finding(
                        src.path, src.line_of(m.start()), "gsp-" +
                        macro.removeprefix("GSP_").lower().replace("_", "-"),
                        f"could not attach {macro} to a function declaration",
                        src.line_text(src.line_of(m.start()))))
                else:
                    functions.append(fn)
        for m in re.finditer(rf"\b{FIELD_MACRO}\b", src.code):
            field = parse_field_annotation(src, m.start())
            if field is None:
                problems.append(Finding(
                    src.path, src.line_of(m.start()), "gsp-epoch-guarded",
                    f"could not attach {FIELD_MACRO} to a field declaration",
                    src.line_text(src.line_of(m.start()))))
            else:
                fields.append(field)
    return functions, fields, problems


# ------------------------------------------------------- clang discovery


def discover_clang(sources: list[Source], compdb_path: Path | None,
                   extra_args: list[str]):
    """Cursor-walking discovery: the macros expand to annotate attributes
    under clang (-DGSP_LINT), so annotated functions and fields are found
    by walking each translation unit. Falls back per-file to textual on
    parse setup errors."""
    import clang.cindex as ci  # noqa: deferred; availability gated by caller

    tag_to_macro = {
        "gsp::hot_path": "GSP_HOT_PATH",
        "gsp::decision_pure": "GSP_DECISION_PURE",
        "gsp::serial_only": "GSP_SERIAL_ONLY",
    }
    compdb = None
    if compdb_path is not None and compdb_path.exists():
        try:
            compdb = ci.CompilationDatabase.fromDirectory(str(compdb_path.parent))
        except ci.CompilationDatabaseError:
            compdb = None

    index = ci.Index.create()
    by_path = {src.path.resolve(): src for src in sources}
    functions: list[AnnotatedFunction] = []
    fields: list[AnnotatedField] = []
    problems: list[Finding] = []

    def args_for(path: Path) -> list[str]:
        base = ["-x", "c++", "-std=c++20", f"-I{REPO_ROOT / 'src'}",
                "-DGSP_LINT"]
        if compdb is not None:
            for cmd in compdb.getCompileCommands(str(path)) or []:
                got = list(cmd.arguments)[1:-1]  # drop compiler and file
                return [a for a in got if a != "-c" and a != str(path)] + [
                    "-DGSP_LINT"]
        return base + extra_args

    def annotate_tags(cursor) -> list[str]:
        return [child.spelling for child in cursor.get_children()
                if child.kind == ci.CursorKind.ANNOTATE_ATTR]

    def walk(cursor, src: Source) -> None:
        for node in cursor.walk_preorder():
            loc = node.location
            if loc.file is None or Path(loc.file.name).resolve() != src.path.resolve():
                continue
            if node.kind in (ci.CursorKind.FUNCTION_DECL,
                             ci.CursorKind.CXX_METHOD,
                             ci.CursorKind.FUNCTION_TEMPLATE,
                             ci.CursorKind.CONSTRUCTOR):
                for tag in annotate_tags(node):
                    macro = tag_to_macro.get(tag)
                    if macro is None:
                        continue
                    body = None
                    if node.is_definition():
                        ext = node.extent
                        open_at = src.text.find("{", ext.start.offset)
                        if 0 <= open_at < ext.end.offset:
                            body = (open_at, ext.end.offset)
                    functions.append(AnnotatedFunction(
                        macro, node.spelling, src, loc.line, body))
            elif node.kind == ci.CursorKind.FIELD_DECL:
                if "gsp::epoch_guarded" in annotate_tags(node):
                    fields.append(AnnotatedField(node.spelling, src, loc.line))

    for src in sources:
        try:
            tu = index.parse(str(src.path), args=args_for(src.path))
            walk(tu.cursor, src)
        except Exception:  # pragma: no cover - environment-specific
            got_f, got_fields, got_p = discover_textual([src])
            functions.extend(got_f)
            fields.extend(got_fields)
            problems.extend(got_p)
    return functions, fields, problems


# ----------------------------------------------------------- the checks


def body_scan(fn: AnnotatedFunction, check: str,
              deny: list[tuple[re.Pattern, str]]) -> list[Finding]:
    if fn.body is None:
        return []
    lo, hi = fn.body
    segment = fn.source.code[lo:hi]
    findings = []
    for pattern, why in deny:
        for m in pattern.finditer(segment):
            line = fn.source.line_of(lo + m.start())
            findings.append(Finding(
                fn.source.path, line, check,
                f"{why} in {fn.macro} function '{fn.name}'",
                fn.source.line_text(line)))
    return findings


HOT_PATH_DENY = [
    (re.compile(r"\bnew\b"), "heap allocation (new-expression)"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "heap allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "heap allocation"),
    (re.compile(r"\b(?:stable_sort|stable_partition|inplace_merge)\b"),
     "temporary-buffer algorithm"),
]

DECISION_PURE_DENY = [
    (re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
     "unordered-container iteration order is run-dependent"),
    (re.compile(r"\b(?:rand|srand|random_device)\b"),
     "entropy source"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"),
     "clock read"),
    (re.compile(r"::\s*now\s*\("), "clock read"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\b"),
     "address-based value (pointer-keyed ordering/seeding)"),
    (re.compile(r"\bless\s*<[^<>;]*\*\s*>"), "pointer-keyed ordering"),
]

FMA_DENY = [
    (re.compile(r"\bfma[fl]?\s*\("), "FP-contracted fused multiply-add"),
    (re.compile(r"\b_mm\w*fn?m(?:add|sub)\w*\b"), "FMA intrinsic"),
]


def check_hot_path(functions) -> list[Finding]:
    out = []
    for fn in functions:
        if fn.macro == "GSP_HOT_PATH":
            out.extend(body_scan(fn, "gsp-hot-path-alloc", HOT_PATH_DENY))
    return out


def check_decision_pure(functions) -> list[Finding]:
    out = []
    for fn in functions:
        if fn.macro == "GSP_DECISION_PURE":
            out.extend(body_scan(fn, "gsp-decision-pure", DECISION_PURE_DENY))
    return out


def check_no_fma(functions, sources) -> list[Finding]:
    out = []
    for fn in functions:
        if fn.macro == "GSP_DECISION_PURE":
            out.extend(body_scan(fn, "gsp-no-fma", FMA_DENY))
    for src in sources:
        if "/simd/" not in src.path.resolve().as_posix():
            continue
        for pattern, why in FMA_DENY:
            for m in pattern.finditer(src.code):
                line = src.line_of(m.start())
                out.append(Finding(src.path, line, "gsp-no-fma",
                                   f"{why} under src/simd/ (kernels must stay "
                                   "mul-then-add for kForced==kScalar bit-identity)",
                                   src.line_text(line)))
    return out


POOL_RUN_RE = re.compile(r"\b\w*pool\w*\s*(?:\.|->)\s*run\s*\(", re.IGNORECASE)


def check_serial_only(functions, sources) -> list[Finding]:
    serial_names = {fn.name for fn in functions if fn.macro == "GSP_SERIAL_ONLY"}
    if not serial_names:
        return []
    call_res = {name: re.compile(rf"\b{re.escape(name)}\s*\(")
                for name in serial_names}
    out = []
    for src in sources:
        for m in POOL_RUN_RE.finditer(src.code):
            open_at = src.code.index("(", m.end() - 1)
            close_at = match_paren(src.code, open_at)
            body = src.code[open_at:close_at]
            for name, call_re in call_res.items():
                for call in call_re.finditer(body):
                    line = src.line_of(open_at + call.start())
                    out.append(Finding(
                        src.path, line, "gsp-serial-only",
                        f"GSP_SERIAL_ONLY function '{name}' called inside a "
                        "thread-pool task body",
                        src.line_text(line)))
    return out


def match_paren(code: str, open_at: int) -> int:
    depth = 0
    for i in range(open_at, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def check_epoch_guarded(fields, sources) -> list[Finding]:
    out = []
    for field in fields:
        decl_stem = field.source.path.stem
        access_re = re.compile(rf"(?:\.|->)\s*{re.escape(field.name)}\b")
        for src in sources:
            if src.path.stem == decl_stem:
                continue  # the declaring class's own translation units
            for m in access_re.finditer(src.code):
                line = src.line_of(m.start())
                out.append(Finding(
                    src.path, line, "gsp-epoch-guarded",
                    f"epoch-guarded field '{field.name}' (declared in "
                    f"{relpath(field.source.path)}) accessed outside its "
                    "checked accessors",
                    src.line_text(line)))
    return out


RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")


def check_relaxed_atomic(sources) -> list[Finding]:
    out = []
    for src in sources:
        rel = relpath(src.path)
        if any(rel.endswith(white) for white in RELAXED_WHITELIST):
            continue
        for m in RELAXED_RE.finditer(src.code):
            line = src.line_of(m.start())
            out.append(Finding(
                src.path, line, "gsp-relaxed-atomic",
                "memory_order_relaxed outside the commutative verdict-bitset "
                "whitelist (core/prefilter_stage.hpp); suppress with a "
                "commutativity argument if sound",
                src.line_text(line)))
    return out


# ----------------------------------------------------------------- main


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    if not paths:
        paths = [str(REPO_ROOT / "src")]
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(f for f in p.rglob("*")
                                if f.suffix in CXX_EXTENSIONS))
        elif p.exists():
            files.append(p)
        else:
            print(f"gsp_lint: no such file: {raw}", file=sys.stderr)
            sys.exit(2)
    seen = set()
    unique = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="gsp_lint.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--engine", choices=("auto", "textual", "clang"),
                        default="auto",
                        help="annotation discovery engine (default: auto = "
                             "clang when python libclang bindings import, "
                             "else the dependency-free textual engine)")
    parser.add_argument("--compdb", type=Path,
                        default=REPO_ROOT / "build" / "compile_commands.json",
                        help="compile_commands.json exported by CMake "
                             "(CMAKE_EXPORT_COMPILE_COMMANDS is ON by "
                             "default; configure any build dir and point "
                             "this at it). Used by the clang engine for "
                             "per-file flags.")
    parser.add_argument("--extra-arg", action="append", default=[],
                        help="extra compiler arg for the clang engine "
                             "(repeatable)")
    parser.add_argument("--baseline", type=Path,
                        help="suppress findings recorded in this baseline "
                             "file (see --write-baseline)")
    parser.add_argument("--write-baseline", type=Path,
                        help="record current findings as the baseline and "
                             "exit 0")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check names and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    if args.list_checks:
        for check in ALL_CHECKS:
            print(check)
        return 0

    engine = args.engine
    if engine == "auto":
        try:
            import clang.cindex  # noqa: F401
            engine = "clang"
        except ImportError:
            engine = "textual"

    files = collect_files(args.paths)
    sources = []
    for f in files:
        try:
            sources.append(Source(f, f.read_text(encoding="utf-8",
                                                 errors="replace")))
        except OSError as err:
            print(f"gsp_lint: cannot read {f}: {err}", file=sys.stderr)
            return 2

    if engine == "clang":
        functions, fields, findings = discover_clang(sources, args.compdb,
                                                     args.extra_arg)
    else:
        functions, fields, findings = discover_textual(sources)

    findings += check_hot_path(functions)
    findings += check_decision_pure(functions)
    findings += check_no_fma(functions, sources)
    findings += check_serial_only(functions, sources)
    findings += check_epoch_guarded(fields, sources)
    findings += check_relaxed_atomic(sources)

    by_src = {src.path.resolve(): src for src in sources}
    findings = [f for f in findings
                if not by_src[f.path.resolve()].is_suppressed(f.line, f.check)]

    if args.write_baseline:
        keys = sorted(f.baseline_key() for f in findings)
        args.write_baseline.write_text(json.dumps(keys, indent=1) + "\n")
        if not args.quiet:
            print(f"gsp_lint: baseline of {len(keys)} findings written to "
                  f"{args.write_baseline}")
        return 0

    if args.baseline and args.baseline.exists():
        budget: dict[str, int] = {}
        for key in json.loads(args.baseline.read_text()):
            budget[key] = budget.get(key, 0) + 1
        fresh = []
        for f in findings:
            key = f.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                fresh.append(f)
        findings = fresh

    findings.sort(key=lambda f: (relpath(f.path), f.line, f.check))
    for f in findings:
        print(f.render())
    if not args.quiet:
        checked = len(sources)
        print(f"gsp_lint[{engine}]: {len(findings)} finding(s) over "
              f"{checked} file(s), {len(functions)} annotated function(s), "
              f"{len(fields)} guarded field(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
