#!/usr/bin/env python3
"""Validate the BENCH_greedy.json schema (gsp.bench_greedy.v1).

Usage: validate_bench_json.py [path]    (default: BENCH_greedy.json)

Exits non-zero if the file is missing, malformed, or violates the schema --
including the engine's core contract that every configuration matched the
naive kernel's edge set.
"""
import json
import sys

REQUIRED_TOP = {"schema", "source", "stretch", "instance", "configs",
                "speedup_full_vs_naive"}
REQUIRED_CONFIG = {"name", "bidirectional", "ball_sharing", "csr_snapshot",
                   "seconds", "edges", "matches_naive", "stats"}
REQUIRED_STATS = {"edges_examined", "dijkstra_runs", "balls_computed",
                  "cache_hits", "csr_rebuilds", "bidirectional_meets", "buckets"}


def fail(msg: str) -> None:
    print(f"BENCH_greedy.json schema violation: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_greedy.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if missing := REQUIRED_TOP - doc.keys():
        fail(f"missing top-level keys: {sorted(missing)}")
    if doc["schema"] != "gsp.bench_greedy.v1":
        fail(f"unexpected schema tag {doc['schema']!r}")
    inst = doc["instance"]
    if {"kind", "n", "m"} - inst.keys():
        fail("instance must carry kind/n/m")

    configs = doc["configs"]
    if not configs:
        fail("configs is empty")
    if configs[0]["name"] != "naive":
        fail("configs[0] must be the naive reference")
    names = set()
    for c in configs:
        if missing := REQUIRED_CONFIG - c.keys():
            fail(f"config {c.get('name', '?')} missing keys: {sorted(missing)}")
        if missing := REQUIRED_STATS - c["stats"].keys():
            fail(f"config {c['name']} stats missing: {sorted(missing)}")
        if c["seconds"] < 0:
            fail(f"config {c['name']} has negative seconds")
        if not c["matches_naive"]:
            fail(f"config {c['name']} did not match the naive edge set")
        if c["name"] in names:
            fail(f"duplicate config name {c['name']}")
        names.add(c["name"])
    if "full" not in names:
        fail("the full-engine configuration is missing")

    print(f"{path}: schema OK ({len(configs)} configs, source={doc['source']}, "
          f"full-vs-naive speedup {doc['speedup_full_vs_naive']:.2f}x)")


if __name__ == "__main__":
    main()
