#!/usr/bin/env python3
"""Validate BENCH_greedy.json artifacts (schemas gsp.bench_greedy.v1-v8)
and diff them against the tracked bench history.

Usage:
    validate_bench_json.py [path]                  schema check only
    validate_bench_json.py --history DIR [path]    schema check of the
        latest entry in DIR (or of `path` if given), plus a regression diff
        of the two newest entries in DIR: kernel configs more than 20%
        slower than the previous entry are flagged, and (v2+) configs whose
        stage-2/stage-3 handoff grew more than 20% in bytes-per-candidate
        are flagged alongside. The metric-workload probe's time and
        bytes-per-candidate, (v3) the accept-heavy probe's time and
        full-query-fallback share, and (v5) the memory probe's RSS
        high-water delta and per-instance candidates-streamed counts are
        diffed the same way. Flags are warnings by default (bench timings
        on shared CI runners are noisy); --strict turns them into a
        non-zero exit.

Schema v2 (PR 3) adds the memory trajectory: per-config "bound_sketch",
"handoff_bytes" and "bytes_per_candidate", the optional "metric_probe"
object (n = 2^10, m = n^2/2 candidates), and top-level "peak_rss_kb".
Schema v3 (PR 4, the speculative two-phase accept path) adds the repair
counters ("repairs", "repair_fallbacks", ...) to every config's stats
block and to the metric probe, plus the optional "accept_probe" object
(clustered-euclidean instance, accept rate > 30%) whose "repair_share"
must stay >= 0.7. Schema v4 (PR 5, the unified session API) adds the
required "session_probe" object: the same instance built repeatedly
through one warm SpannerSession vs a fresh session per call, whose
"warm_pool_constructions" and "warm_workspace_constructions" must both
be exactly 0 -- the warm-start acceptance criterion -- and whose warm
edge sets must match the cold ones. Schema v5 (PR 6, chunked candidate
streaming) makes the RSS accounting per-row -- every config and probe
carries "rss_delta_kb" sampled from ru_maxrss before/after instead of
one process-exit read attributed to everything -- and adds the required
"mem_probe" object: a t = 2 greedy build over the grid-pruned streaming
candidate source on uniform and clustered 2D instances (n = 10^6 in the
history run, 10^5 in the per-PR smoke) whose RSS high-water delta must
stay inside the fixed linear "rss_budget_kb" and whose candidate buffer
must peak below the full (never-materialized) candidate list. Schema v6
(PR 7, cell-batched rejection) adds the required "time_probe" object: the
wall clock of the grid-streamed t = 2 build with cell batching on,
normalized to microseconds per streamed candidate. At the reduced per-PR
shape (n < 10^6) the probe must beat the 49 us/candidate per-candidate
baseline by at least 3x; at the full n = 10^6 history shape the
end-to-end build must finish inside 15 minutes single-core. The
us/candidate trajectory is history-diffed like the other metrics
(same-n entries only). Schema v7 (PR 8, multi-target group probes) adds
the group-probe counters ("certs_two_sided", "group_probes",
"group_probe_decisions", "group_probe_early_exits") to every config's
stats block, plus the required "group_probe" object: the same instance
built with GroupProbing kOff (the PR-7 per-candidate baseline) and kOn
(one batched traversal deciding a whole source group) on the metric
all-pairs and graph shapes, each normalized to microseconds per streamed
candidate. Both arms' edge sets must be bit-identical to the kOff build,
and the metric arm -- min-of-3 builds per arm against its own
in-process kOff baseline, so CI-runner noise largely cancels -- must
beat it by at least 1.1x (stable measurements sit at 1.1-1.3x on the
CI shapes; the floor is the regression guard under residual noise, not
the headline). The
on-us/candidate trajectories are history-diffed per arm (same-n entries
only). Schema v8 (PR 9, the SIMD prefilter backend) adds the required
"simd_probe" object -- the four kernel ablations (far_sweep,
distance_batch, sketch_probe, radix_sort), each timing the scalar
reference against the dispatch-selected vector table (the radix row:
std::stable_sort against the LSD radix sorter) on identical inputs --
plus the "simd_backend" field on the time probe and on both group-probe
arms, recording what dispatch actually selected for those builds. Every
ablation row's outputs_identical must be true (a speedup may never be
quoted for a kernel that changed answers), and when dispatch selected a
vector backend at least two of the four rows must beat the 1.3x floor.
History diffs of the time/group probes are backend-honest: when the two
entries ran on different dispatch-selected backends their timings are
not comparable, so the diff is refused (skipped with a notice) rather
than flagged as a regression or an improvement. Older entries are still
accepted and diffed on the fields they carry.

Exits non-zero if a file is missing, malformed, or violates the schema --
including the engine's core contract that every configuration matched the
naive kernel's edge set.
"""
import argparse
import json
import sys
from pathlib import Path

SCHEMAS = {f"gsp.bench_greedy.v{i}" for i in range(1, 9)}
REQUIRED_TOP = {"schema", "source", "stretch", "instance", "configs",
                "speedup_full_vs_naive"}
REQUIRED_CONFIG = {"name", "bidirectional", "ball_sharing", "csr_snapshot",
                   "seconds", "edges", "matches_naive", "stats"}
REQUIRED_STATS = {"edges_examined", "dijkstra_runs", "balls_computed",
                  "cache_hits", "csr_rebuilds", "bidirectional_meets", "buckets"}
# v2 additions: the handoff-memory columns and the sketch/compaction stats.
REQUIRED_CONFIG_V2 = REQUIRED_CONFIG | {"bound_sketch", "handoff_bytes",
                                        "bytes_per_candidate"}
REQUIRED_STATS_V2 = REQUIRED_STATS | {"csr_compactions", "sketch_hits",
                                      "sketch_accepts", "snapshot_accepts"}
REQUIRED_TOP_V2 = REQUIRED_TOP | {"peak_rss_kb"}
# v3 additions: the two-phase accept-path counters.
REQUIRED_STATS_V3 = REQUIRED_STATS_V2 | {"repairs", "repair_reprobes",
                                         "repair_fallbacks", "certs_published",
                                         "cert_ball_aborts"}
REQUIRED_METRIC_PROBE = {"kind", "n", "candidates", "stretch", "serial_seconds",
                         "mt2_seconds", "edges", "matches_serial",
                         "handoff_bytes", "bytes_per_candidate",
                         "pr2_bytes_per_candidate"}
REQUIRED_ACCEPT_PROBE = {"kind", "n", "m", "stretch", "accept_rate",
                         "serial_seconds", "mt2_seconds", "edges",
                         "matches_serial", "snapshot_accepts", "repairs",
                         "repair_reprobes", "repair_fallbacks",
                         "certs_published", "cert_ball_aborts", "repair_share"}
# The tentpole's acceptance criterion: on the accept-heavy probe, at least
# this share of tentative accepts must resolve without a full exact query.
ACCEPT_PROBE_MIN_REPAIR_SHARE = 0.70

# v4 additions: the session-reuse probe of the unified API.
REQUIRED_SESSION_PROBE = {"kind", "n", "m", "stretch", "threads", "builds",
                          "cold_seconds", "warm_seconds",
                          "cold_setup_seconds", "warm_setup_seconds",
                          "cold_pool_constructions",
                          "cold_workspace_constructions",
                          "warm_pool_constructions",
                          "warm_workspace_constructions", "matches"}

# v5 additions: per-row RSS attribution and the linear-space memory probe.
REQUIRED_CONFIG_V5 = REQUIRED_CONFIG_V2 | {"rss_delta_kb"}
REQUIRED_STATS_V5 = REQUIRED_STATS_V3 | {"candidates_streamed",
                                         "candidate_buffer_peak_bytes"}
REQUIRED_MEM_PROBE = {"kind", "n", "stretch", "separation", "rss_budget_kb",
                      "rss_before_kb", "within_budget", "instances"}
REQUIRED_MEM_INSTANCE = {"kind", "gen_seconds", "build_seconds", "edges",
                         "weight", "stretch_target", "candidates_streamed",
                         "candidate_buffer_peak_bytes", "rss_before_kb",
                         "rss_after_kb", "rss_delta_kb"}
CANDIDATE_BYTES = 16  # sizeof(GreedyCandidate): two u32 endpoints + f64 weight

# v6 additions: the wall-clock probe of the cell-batched grid build and
# the per-candidate decision counters that attribute its amortization.
REQUIRED_TIME_PROBE = {"kind", "n", "stretch", "separation", "gen_seconds",
                       "grid_seconds", "build_seconds", "edges", "candidates",
                       "us_per_candidate", "cell_balls", "cell_ball_decisions",
                       "coarse_rejects", "cell_ball_share", "dijkstra_runs"}
REQUIRED_STATS_V6 = REQUIRED_STATS_V5 | {"cell_balls", "cell_ball_decisions",
                                         "coarse_rejects"}
# The tentpole's acceptance criterion: the per-candidate path measured
# 49 us/candidate on the n = 10^5 grid shape; the cell-batched path must
# beat it by at least 3x at the reduced CI shapes, and the full 10^6
# history run must finish inside 15 minutes single-core.
TIME_PROBE_BASELINE_US = 49.0
TIME_PROBE_MIN_SPEEDUP = 3.0
TIME_PROBE_FULL_N = 1_000_000
TIME_PROBE_FULL_BUILD_CEILING_S = 900.0

# v7 additions: the multi-target group-probe counters and the kOn-vs-kOff
# ablation object.
REQUIRED_STATS_V7 = REQUIRED_STATS_V6 | {"certs_two_sided", "group_probes",
                                         "group_probe_decisions",
                                         "group_probe_early_exits"}
REQUIRED_GROUP_PROBE_ARM = {"kind", "n", "m", "stretch", "candidates",
                            "off_seconds", "on_seconds",
                            "off_us_per_candidate", "on_us_per_candidate",
                            "speedup", "matches_off", "group_probes",
                            "group_probe_decisions",
                            "group_probe_early_exits", "mean_group_size",
                            "early_exit_share"}
# The tentpole's acceptance floor: the metric all-pairs arm must beat its
# own in-process kOff (PR-7 per-candidate) baseline in us/candidate.
# Both runs share a process and a warm session (min-of-3 builds each),
# so the ratio is robust to CI-runner speed. Honest calibration: stable
# min-of-5 measurements on the CI shapes land at 1.1-1.3x (n = 512 ..
# 2048), so the floor sits just under the band's low edge -- it exists
# to catch a kernel regression (or a silently disabled kOn path), not
# to restate the headline.
GROUP_PROBE_MIN_SPEEDUP = 1.05

# v8 additions: the SIMD kernel ablation and the dispatch-honesty fields.
REQUIRED_SIMD_KERNELS = ("far_sweep", "distance_batch", "sketch_probe",
                         "radix_sort")
REQUIRED_SIMD_KERNEL_KEYS = {"scalar_seconds", "simd_seconds", "speedup",
                             "outputs_identical"}
# The tentpole's acceptance floor: with a vector backend dispatch-selected,
# at least this many of the four kernel ablations must beat the speedup
# floor. (On a scalar-only machine the ablation arms run identical code
# and the floor is vacuous -- dispatch honesty, not a build failure.)
SIMD_PROBE_MIN_SPEEDUP = 1.30
SIMD_PROBE_MIN_KERNELS_OVER_FLOOR = 2

REGRESSION_THRESHOLD = 1.20  # >20% worse than the previous entry


def fail(msg: str) -> None:
    print(f"BENCH_greedy.json schema violation: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    raise AssertionError  # unreachable: fail() exits


def validate(doc: dict, path) -> None:
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        fail(f"{path}: unexpected schema tag {schema!r}")
    version = int(schema.rsplit("v", 1)[1])
    v2, v3, v4 = version >= 2, version >= 3, version >= 4
    v5, v6, v7, v8 = version >= 5, version >= 6, version >= 7, version >= 8
    required_top = REQUIRED_TOP_V2 if v2 else REQUIRED_TOP
    required_config = (REQUIRED_CONFIG_V5 if v5 else
                       REQUIRED_CONFIG_V2 if v2 else REQUIRED_CONFIG)
    required_stats = (REQUIRED_STATS_V7 if v7 else
                      REQUIRED_STATS_V6 if v6 else
                      REQUIRED_STATS_V5 if v5 else
                      REQUIRED_STATS_V3 if v3 else
                      REQUIRED_STATS_V2 if v2 else REQUIRED_STATS)
    if missing := required_top - doc.keys():
        fail(f"{path}: missing top-level keys: {sorted(missing)}")
    inst = doc["instance"]
    if {"kind", "n", "m"} - inst.keys():
        fail(f"{path}: instance must carry kind/n/m")

    configs = doc["configs"]
    if not configs:
        fail(f"{path}: configs is empty")
    if configs[0]["name"] != "naive":
        fail(f"{path}: configs[0] must be the naive reference")
    names = set()
    for c in configs:
        if missing := required_config - c.keys():
            fail(f"{path}: config {c.get('name', '?')} missing keys: {sorted(missing)}")
        if missing := required_stats - c["stats"].keys():
            fail(f"{path}: config {c['name']} stats missing: {sorted(missing)}")
        if c["seconds"] < 0:
            fail(f"{path}: config {c['name']} has negative seconds")
        if not c["matches_naive"]:
            fail(f"{path}: config {c['name']} did not match the naive edge set")
        if c.get("threads", 1) < 1:
            fail(f"{path}: config {c['name']} has a non-positive thread count")
        if v2 and c["bytes_per_candidate"] < 0:
            fail(f"{path}: config {c['name']} has negative bytes_per_candidate")
        if c["name"] in names:
            fail(f"{path}: duplicate config name {c['name']}")
        names.add(c["name"])
    if "full" not in names:
        fail(f"{path}: the full-engine configuration is missing")

    probe = doc.get("metric_probe")
    if probe is not None:
        if missing := REQUIRED_METRIC_PROBE - probe.keys():
            fail(f"{path}: metric_probe missing keys: {sorted(missing)}")
        if not probe["matches_serial"]:
            fail(f"{path}: metric_probe parallel edge set diverged from serial")
        if probe["candidates"] <= 0 or probe["bytes_per_candidate"] < 0:
            fail(f"{path}: metric_probe has nonsensical candidate accounting")

    session_probe = doc.get("session_probe")
    if v4 and session_probe is None:
        fail(f"{path}: schema v4 requires the session_probe object")
    if session_probe is not None:
        if missing := REQUIRED_SESSION_PROBE - session_probe.keys():
            fail(f"{path}: session_probe missing keys: {sorted(missing)}")
        if not session_probe["matches"]:
            fail(f"{path}: session_probe warm edge sets diverged from cold")
        if session_probe["builds"] <= 0:
            fail(f"{path}: session_probe measured no builds")
        # The warm-start acceptance criterion: a warm build() constructs
        # nothing -- zero thread pools, zero Dijkstra workspaces.
        if session_probe["warm_pool_constructions"] != 0:
            fail(f"{path}: warm builds constructed "
                 f"{session_probe['warm_pool_constructions']} thread pool(s); "
                 f"the session warm-start contract requires 0")
        if session_probe["warm_workspace_constructions"] != 0:
            fail(f"{path}: warm builds constructed "
                 f"{session_probe['warm_workspace_constructions']} workspace(s); "
                 f"the session warm-start contract requires 0")
        if session_probe["cold_pool_constructions"] == 0 and session_probe["threads"] > 1:
            fail(f"{path}: session_probe cold arm constructed no pools -- "
                 f"the probe is not measuring what it claims")

    mem_probe = doc.get("mem_probe")
    if v5 and mem_probe is None:
        fail(f"{path}: schema v5 requires the mem_probe object")
    if mem_probe is not None:
        if missing := REQUIRED_MEM_PROBE - mem_probe.keys():
            fail(f"{path}: mem_probe missing keys: {sorted(missing)}")
        if not mem_probe["instances"]:
            fail(f"{path}: mem_probe ran no instances")
        kinds = set()
        high_water = 0
        for inst in mem_probe["instances"]:
            if missing := REQUIRED_MEM_INSTANCE - inst.keys():
                fail(f"{path}: mem_probe instance {inst.get('kind', '?')} "
                     f"missing keys: {sorted(missing)}")
            kinds.add(inst["kind"])
            high_water = max(high_water,
                             inst["rss_after_kb"] - mem_probe["rss_before_kb"])
            if inst["candidates_streamed"] <= 0:
                fail(f"{path}: mem_probe {inst['kind']} streamed no candidates")
            if inst["edges"] < mem_probe["n"] - 1:
                fail(f"{path}: mem_probe {inst['kind']} spanner does not span "
                     f"({inst['edges']} edges for n={mem_probe['n']})")
            # The linear-space contract: the resident candidate chunk must
            # peak strictly below the full (never-materialized) list.
            full_bytes = inst["candidates_streamed"] * CANDIDATE_BYTES
            if inst["candidate_buffer_peak_bytes"] >= full_bytes:
                fail(f"{path}: mem_probe {inst['kind']} candidate buffer "
                     f"peaked at {inst['candidate_buffer_peak_bytes']} B -- "
                     f"the full list is {full_bytes} B; nothing was streamed")
        if kinds != {"uniform", "clustered"}:
            fail(f"{path}: mem_probe must cover uniform and clustered "
                 f"instances, got {sorted(kinds)}")
        # The budget is a hard acceptance criterion, recomputed here so a
        # harness that mis-reports within_budget still fails.
        if high_water > mem_probe["rss_budget_kb"]:
            fail(f"{path}: mem_probe RSS high-water delta {high_water} KiB "
                 f"exceeds the {mem_probe['rss_budget_kb']} KiB budget")
        if not mem_probe["within_budget"]:
            fail(f"{path}: mem_probe reports within_budget=false")

    time_probe = doc.get("time_probe")
    if v6 and time_probe is None:
        fail(f"{path}: schema v6 requires the time_probe object")
    if time_probe is not None:
        required_time = (REQUIRED_TIME_PROBE | {"simd_backend"} if v8
                         else REQUIRED_TIME_PROBE)
        if missing := required_time - time_probe.keys():
            fail(f"{path}: time_probe missing keys: {sorted(missing)}")
        if time_probe["candidates"] <= 0:
            fail(f"{path}: time_probe streamed no candidates")
        if time_probe["edges"] < time_probe["n"] - 1:
            fail(f"{path}: time_probe spanner does not span "
                 f"({time_probe['edges']} edges for n={time_probe['n']})")
        if time_probe["cell_balls"] <= 0:
            fail(f"{path}: time_probe grew no cell balls -- the batched "
                 f"rejection path did not engage")
        # The tentpole acceptance criterion, recomputed from the raw
        # fields so a harness that mis-reports us_per_candidate still
        # fails. Reduced shapes assert the per-candidate speedup; the
        # full history shape asserts the end-to-end single-core ceiling.
        us = time_probe["build_seconds"] * 1e6 / time_probe["candidates"]
        if time_probe["n"] < TIME_PROBE_FULL_N:
            ceiling = TIME_PROBE_BASELINE_US / TIME_PROBE_MIN_SPEEDUP
            if us > ceiling:
                fail(f"{path}: time_probe {us:.2f} us/candidate exceeds the "
                     f"{ceiling:.2f} us ceiling ({TIME_PROBE_MIN_SPEEDUP:.0f}x "
                     f"over the {TIME_PROBE_BASELINE_US:.0f} us per-candidate "
                     f"baseline)")
        elif time_probe["build_seconds"] > TIME_PROBE_FULL_BUILD_CEILING_S:
            fail(f"{path}: time_probe build took "
                 f"{time_probe['build_seconds']:.0f}s at n={time_probe['n']} -- "
                 f"over the {TIME_PROBE_FULL_BUILD_CEILING_S:.0f}s "
                 f"single-core ceiling")

    group_probe = doc.get("group_probe")
    if v7 and group_probe is None:
        fail(f"{path}: schema v7 requires the group_probe object")
    if group_probe is not None:
        if missing := {"metric", "graph"} - group_probe.keys():
            fail(f"{path}: group_probe missing arms: {sorted(missing)}")
        required_arm = (REQUIRED_GROUP_PROBE_ARM | {"simd_backend"} if v8
                        else REQUIRED_GROUP_PROBE_ARM)
        for arm_name in ("metric", "graph"):
            arm = group_probe[arm_name]
            if missing := required_arm - arm.keys():
                fail(f"{path}: group_probe {arm_name} arm missing keys: "
                     f"{sorted(missing)}")
            if arm["candidates"] <= 0:
                fail(f"{path}: group_probe {arm_name} arm streamed no candidates")
            # The bit-identity contract: the batched kernel must reproduce
            # the per-candidate path's edge set exactly.
            if not arm["matches_off"]:
                fail(f"{path}: group_probe {arm_name} arm kOn edge set "
                     f"diverged from the kOff build")
            if arm["group_probes"] <= 0:
                fail(f"{path}: group_probe {arm_name} arm ran no group "
                     f"probes -- the batched kernel did not engage")
        # The acceptance floor, recomputed from the raw seconds so a
        # harness that mis-reports the speedup still fails. Only the
        # metric all-pairs arm carries the floor (the graph arm's groups
        # are narrower; its speedup is tracked informationally).
        metric = group_probe["metric"]
        if metric["on_seconds"] <= 0:
            fail(f"{path}: group_probe metric arm reports no kOn time")
        speedup = metric["off_seconds"] / metric["on_seconds"]
        if speedup < GROUP_PROBE_MIN_SPEEDUP:
            fail(f"{path}: group_probe metric arm speedup {speedup:.2f}x "
                 f"below the {GROUP_PROBE_MIN_SPEEDUP:.2f}x floor over the "
                 f"per-candidate (kOff) baseline")

    simd_probe = doc.get("simd_probe")
    if v8 and simd_probe is None:
        fail(f"{path}: schema v8 requires the simd_probe object")
    if simd_probe is not None:
        if "backend" not in simd_probe:
            fail(f"{path}: simd_probe missing the backend field")
        if missing := set(REQUIRED_SIMD_KERNELS) - simd_probe.keys():
            fail(f"{path}: simd_probe missing kernels: {sorted(missing)}")
        over_floor = 0
        for kernel in REQUIRED_SIMD_KERNELS:
            row = simd_probe[kernel]
            if missing := REQUIRED_SIMD_KERNEL_KEYS - row.keys():
                fail(f"{path}: simd_probe {kernel} missing keys: "
                     f"{sorted(missing)}")
            # The bit-identity contract: an ablation arm that changed
            # answers invalidates its own timing.
            if not row["outputs_identical"]:
                fail(f"{path}: simd_probe {kernel} arms produced different "
                     f"outputs -- its speedup is meaningless")
            if row["simd_seconds"] <= 0:
                fail(f"{path}: simd_probe {kernel} reports no vector-arm time")
            # Recomputed from the raw seconds so a harness that
            # mis-reports the speedup column still fails.
            if row["scalar_seconds"] / row["simd_seconds"] >= SIMD_PROBE_MIN_SPEEDUP:
                over_floor += 1
        # The floor only binds when dispatch actually selected a vector
        # table; on a scalar-only machine both arms run identical code.
        if (simd_probe["backend"] != "scalar"
                and over_floor < SIMD_PROBE_MIN_KERNELS_OVER_FLOOR):
            fail(f"{path}: simd_probe ({simd_probe['backend']}) has only "
                 f"{over_floor} kernel(s) at or over the "
                 f"{SIMD_PROBE_MIN_SPEEDUP:.1f}x floor; "
                 f"{SIMD_PROBE_MIN_KERNELS_OVER_FLOOR} required")

    accept_probe = doc.get("accept_probe")
    if accept_probe is not None:
        if missing := REQUIRED_ACCEPT_PROBE - accept_probe.keys():
            fail(f"{path}: accept_probe missing keys: {sorted(missing)}")
        if not accept_probe["matches_serial"]:
            fail(f"{path}: accept_probe parallel edge set diverged from serial")
        if accept_probe["accept_rate"] <= 0.30:
            fail(f"{path}: accept_probe is not accept-heavy "
                 f"(accept_rate {accept_probe['accept_rate']:.3f} <= 0.30)")
        if accept_probe["repair_share"] < ACCEPT_PROBE_MIN_REPAIR_SHARE:
            fail(f"{path}: accept_probe repair_share "
                 f"{accept_probe['repair_share']:.3f} below the "
                 f"{ACCEPT_PROBE_MIN_REPAIR_SHARE:.2f} acceptance floor")

    extras = []
    if probe is not None:
        extras.append(f"metric probe {probe['bytes_per_candidate']:.2f} B/cand "
                      f"(PR2 baseline {probe['pr2_bytes_per_candidate']:.1f})")
    if accept_probe is not None:
        extras.append(f"accept probe repair share "
                      f"{accept_probe['repair_share']:.2f} "
                      f"({accept_probe['repairs']} repairs, "
                      f"{accept_probe['repair_fallbacks']} fallbacks)")
    if session_probe is not None:
        extras.append(
            f"session probe warm/cold {session_probe['warm_seconds']:.3f}s/"
            f"{session_probe['cold_seconds']:.3f}s over "
            f"{session_probe['builds']} builds, warm constructions 0/0")
    if mem_probe is not None:
        high = max(i["rss_after_kb"] - mem_probe["rss_before_kb"]
                   for i in mem_probe["instances"])
        streamed = sum(i["candidates_streamed"] for i in mem_probe["instances"])
        extras.append(f"mem probe n={mem_probe['n']} rss +{high} KiB "
                      f"(budget {mem_probe['rss_budget_kb']}), "
                      f"{streamed} candidates streamed")
    if time_probe is not None:
        extras.append(f"time probe n={time_probe['n']} "
                      f"{time_probe['us_per_candidate']:.2f} us/cand "
                      f"(cell-ball share {time_probe['cell_ball_share']:.2f}, "
                      f"{time_probe['coarse_rejects']} coarse rejects)")
    if group_probe is not None:
        extras.append(
            f"group probe metric {group_probe['metric']['speedup']:.2f}x / "
            f"graph {group_probe['graph']['speedup']:.2f}x "
            f"(mean group {group_probe['metric']['mean_group_size']:.1f}, "
            f"early-exit share "
            f"{group_probe['metric']['early_exit_share']:.2f})")
    if simd_probe is not None:
        speedups = "/".join(f"{simd_probe[k]['speedup']:.2f}x"
                            for k in REQUIRED_SIMD_KERNELS)
        extras.append(f"simd probe {simd_probe['backend']} "
                      f"(far-sweep/dist/sketch/radix {speedups})")
    if v2:
        extras.append(f"peak RSS {doc['peak_rss_kb']} KiB")
    suffix = f"; {', '.join(extras)}" if extras else ""
    print(f"{path}: schema OK ({schema}, {len(configs)} configs, "
          f"source={doc['source']}, "
          f"full-vs-naive speedup {doc['speedup_full_vs_naive']:.2f}x{suffix})")


def diff_metric(name: str, old, new, unit: str):
    """Returns (is_regression, message) or None when not comparable.
    All tracked metrics (seconds, bytes-per-candidate) are
    smaller-is-better."""
    if old is None or new is None or old <= 0:
        return None
    ratio = new / old
    if ratio > REGRESSION_THRESHOLD:
        return True, (f"REGRESSION: {name} is {ratio:.2f}x the previous entry "
                      f"({old:.3f}{unit} -> {new:.3f}{unit})")
    if ratio < 1 / REGRESSION_THRESHOLD:
        return False, (f"improvement: {name} {1 / ratio:.2f}x better "
                       f"({old:.3f}{unit} -> {new:.3f}{unit})")
    return None


def diff_history(history_dir: Path, strict: bool) -> int:
    """Compare the two newest entries; returns the number of regressions."""
    entries = sorted(p for p in history_dir.glob("*.json"))
    if len(entries) < 2:
        print(f"{history_dir}: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
              "nothing to diff yet")
        return 0
    prev_path, cur_path = entries[-2], entries[-1]
    prev_doc = load(prev_path)
    cur_doc = load(cur_path)
    prev = {c["name"]: c for c in prev_doc["configs"]}
    regressions = 0

    def report(result):
        nonlocal regressions
        if result is None:
            return
        is_regression, msg = result
        if is_regression:
            regressions += 1
            print(f"KERNEL {msg} ({prev_path.name} -> {cur_path.name})",
                  file=sys.stderr)
        else:
            print(f"kernel {msg}")

    for c in cur_doc["configs"]:
        old = prev.get(c["name"])
        if old is None:
            continue
        report(diff_metric(f"{c['name']} time", old["seconds"], c["seconds"], "s"))
        # v2 vs v2 entries also track the handoff-memory trajectory.
        report(diff_metric(f"{c['name']} handoff", old.get("bytes_per_candidate"),
                           c.get("bytes_per_candidate"), " B/cand"))
    old_probe = prev_doc.get("metric_probe") or {}
    cur_probe = cur_doc.get("metric_probe")
    if cur_probe is not None:
        report(diff_metric("metric_probe time", old_probe.get("serial_seconds"),
                           cur_probe["serial_seconds"], "s"))
        report(diff_metric("metric_probe handoff",
                           old_probe.get("bytes_per_candidate"),
                           cur_probe["bytes_per_candidate"], " B/cand"))

    def fallback_share(probe):
        """Share of tentative accepts that fell back to a full exact query
        (smaller is better, so diff_metric applies directly)."""
        if probe is None or "repair_fallbacks" not in probe:
            return None
        tentative = (probe.get("snapshot_accepts", 0) + probe.get("repairs", 0) +
                     probe["repair_fallbacks"])
        return probe["repair_fallbacks"] / tentative if tentative > 0 else None

    old_accept = prev_doc.get("accept_probe")
    cur_accept = cur_doc.get("accept_probe")
    if cur_accept is not None:
        report(diff_metric("accept_probe time", (old_accept or {}).get("mt2_seconds"),
                           cur_accept["mt2_seconds"], "s"))
        report(diff_metric("accept_probe fallback share", fallback_share(old_accept),
                           fallback_share(cur_accept), ""))

    def per_build(probe, key):
        """Normalize a session-probe arm to seconds per build."""
        if probe is None or key not in probe or not probe.get("builds"):
            return None
        return probe[key] / probe["builds"]

    old_session = prev_doc.get("session_probe")
    cur_session = cur_doc.get("session_probe")
    if cur_session is not None:
        report(diff_metric("session_probe warm build",
                           per_build(old_session, "warm_seconds"),
                           per_build(cur_session, "warm_seconds"), "s"))

    def mem_high_water(probe):
        """RSS high-water delta of the memory probe in KiB (smaller is
        better); None when absent or the probe shapes are not comparable."""
        if probe is None or not probe.get("instances"):
            return None
        return max(i["rss_after_kb"] - probe["rss_before_kb"]
                   for i in probe["instances"])

    old_mem = prev_doc.get("mem_probe")
    cur_mem = cur_doc.get("mem_probe")
    # Only diff same-n entries: the per-PR 10^5 smoke and the 10^6 history
    # run are different shapes, not a regression.
    if cur_mem is not None and old_mem is not None and old_mem["n"] == cur_mem["n"]:
        report(diff_metric("mem_probe rss high-water", mem_high_water(old_mem),
                           mem_high_water(cur_mem), " KiB"))
        old_insts = {i["kind"]: i for i in old_mem["instances"]}
        for inst in cur_mem["instances"]:
            old_inst = old_insts.get(inst["kind"])
            if old_inst is None:
                continue
            report(diff_metric(f"mem_probe {inst['kind']} candidates",
                               old_inst["candidates_streamed"],
                               inst["candidates_streamed"], " cands"))
            report(diff_metric(f"mem_probe {inst['kind']} build",
                               old_inst["build_seconds"],
                               inst["build_seconds"], "s"))

    def backends_comparable(name: str, old, new) -> bool:
        """v8 dispatch honesty: timings from different dispatch-selected
        backends are measurements of different code, not a trajectory.
        Refuse the diff (with a notice) instead of flagging either way.
        Pre-v8 entries carry no backend field and diff as before."""
        old_backend = (old or {}).get("simd_backend")
        new_backend = (new or {}).get("simd_backend")
        if old_backend is None or new_backend is None:
            return True
        if old_backend == new_backend:
            return True
        print(f"{name}: diff refused -- entries ran on different SIMD "
              f"backends ({old_backend} -> {new_backend}); timings are "
              f"not comparable")
        return False

    old_time = prev_doc.get("time_probe")
    cur_time = cur_doc.get("time_probe")
    # Same-n entries only, like the mem probe: the per-PR 10^5 smoke and
    # the 10^6 history run are different shapes, not a regression.
    if (cur_time is not None and old_time is not None
            and old_time["n"] == cur_time["n"]
            and backends_comparable("time_probe", old_time, cur_time)):
        report(diff_metric("time_probe us/candidate",
                           old_time["us_per_candidate"],
                           cur_time["us_per_candidate"], " us"))
        report(diff_metric("time_probe build", old_time["build_seconds"],
                           cur_time["build_seconds"], "s"))

    old_group = prev_doc.get("group_probe") or {}
    cur_group = cur_doc.get("group_probe")
    if cur_group is not None:
        # Per-arm, same-n entries only (like the mem/time probes). The kOn
        # column is the kernel's trajectory; the kOff column guards the
        # per-candidate baseline against silent regression too.
        for arm_name in ("metric", "graph"):
            cur_arm = cur_group.get(arm_name)
            old_arm = old_group.get(arm_name)
            if cur_arm is None or old_arm is None or old_arm["n"] != cur_arm["n"]:
                continue
            if not backends_comparable(f"group_probe {arm_name}", old_arm,
                                       cur_arm):
                continue
            report(diff_metric(f"group_probe {arm_name} on us/candidate",
                               old_arm["on_us_per_candidate"],
                               cur_arm["on_us_per_candidate"], " us"))
            report(diff_metric(f"group_probe {arm_name} off us/candidate",
                               old_arm["off_us_per_candidate"],
                               cur_arm["off_us_per_candidate"], " us"))

    old_simd = prev_doc.get("simd_probe")
    cur_simd = cur_doc.get("simd_probe")
    if cur_simd is not None and old_simd is not None:
        if old_simd.get("backend") != cur_simd.get("backend"):
            print(f"simd_probe: diff refused -- entries ran on different "
                  f"SIMD backends ({old_simd.get('backend')} -> "
                  f"{cur_simd.get('backend')}); timings are not comparable")
        else:
            for kernel in ("far_sweep", "distance_batch", "sketch_probe",
                           "radix_sort"):
                old_row = old_simd.get(kernel)
                cur_row = cur_simd.get(kernel)
                if old_row is None or cur_row is None:
                    continue
                report(diff_metric(f"simd_probe {kernel} vector arm",
                                   old_row["simd_seconds"],
                                   cur_row["simd_seconds"], "s"))

    if regressions == 0:
        print(f"history diff OK: {prev_path.name} -> {cur_path.name}, "
              f"no config regressed more than {(REGRESSION_THRESHOLD - 1) * 100:.0f}% "
              "(time or bytes-per-candidate)")
    elif strict:
        return regressions
    else:
        print(f"({regressions} regression(s) flagged; informational without --strict)",
              file=sys.stderr)
        regressions = 0
    return regressions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", default=None,
                        help="artifact to schema-check (default: BENCH_greedy.json, "
                             "or the newest history entry with --history)")
    parser.add_argument("--history", metavar="DIR", default=None,
                        help="tracked bench-history directory to diff")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on flagged regressions")
    args = parser.parse_args()

    if args.history is None:
        path = args.path or "BENCH_greedy.json"
        validate(load(path), path)
        return

    history_dir = Path(args.history)
    if not history_dir.is_dir():
        fail(f"history directory {history_dir} does not exist")
    if args.path:
        validate(load(args.path), args.path)
    else:
        entries = sorted(history_dir.glob("*.json"))
        if entries:
            validate(load(entries[-1]), entries[-1])
    if diff_history(history_dir, args.strict) > 0:
        sys.exit(2)


if __name__ == "__main__":
    main()
