#!/usr/bin/env python3
"""Validate BENCH_greedy.json artifacts (schema gsp.bench_greedy.v1) and
diff them against the tracked bench history.

Usage:
    validate_bench_json.py [path]                  schema check only
    validate_bench_json.py --history DIR [path]    schema check of the
        latest entry in DIR (or of `path` if given), plus a regression diff
        of the two newest entries in DIR: kernel configs more than 20%
        slower than the previous entry are flagged. Flags are warnings by
        default (bench timings on shared CI runners are noisy); --strict
        turns them into a non-zero exit.

Exits non-zero if a file is missing, malformed, or violates the schema --
including the engine's core contract that every configuration matched the
naive kernel's edge set.
"""
import argparse
import json
import sys
from pathlib import Path

REQUIRED_TOP = {"schema", "source", "stretch", "instance", "configs",
                "speedup_full_vs_naive"}
REQUIRED_CONFIG = {"name", "bidirectional", "ball_sharing", "csr_snapshot",
                   "seconds", "edges", "matches_naive", "stats"}
REQUIRED_STATS = {"edges_examined", "dijkstra_runs", "balls_computed",
                  "cache_hits", "csr_rebuilds", "bidirectional_meets", "buckets"}

REGRESSION_THRESHOLD = 1.20  # >20% slower than the previous entry


def fail(msg: str) -> None:
    print(f"BENCH_greedy.json schema violation: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    raise AssertionError  # unreachable: fail() exits


def validate(doc: dict, path) -> None:
    if missing := REQUIRED_TOP - doc.keys():
        fail(f"{path}: missing top-level keys: {sorted(missing)}")
    if doc["schema"] != "gsp.bench_greedy.v1":
        fail(f"{path}: unexpected schema tag {doc['schema']!r}")
    inst = doc["instance"]
    if {"kind", "n", "m"} - inst.keys():
        fail(f"{path}: instance must carry kind/n/m")

    configs = doc["configs"]
    if not configs:
        fail(f"{path}: configs is empty")
    if configs[0]["name"] != "naive":
        fail(f"{path}: configs[0] must be the naive reference")
    names = set()
    for c in configs:
        if missing := REQUIRED_CONFIG - c.keys():
            fail(f"{path}: config {c.get('name', '?')} missing keys: {sorted(missing)}")
        if missing := REQUIRED_STATS - c["stats"].keys():
            fail(f"{path}: config {c['name']} stats missing: {sorted(missing)}")
        if c["seconds"] < 0:
            fail(f"{path}: config {c['name']} has negative seconds")
        if not c["matches_naive"]:
            fail(f"{path}: config {c['name']} did not match the naive edge set")
        if c.get("threads", 1) < 1:
            fail(f"{path}: config {c['name']} has a non-positive thread count")
        if c["name"] in names:
            fail(f"{path}: duplicate config name {c['name']}")
        names.add(c["name"])
    if "full" not in names:
        fail(f"{path}: the full-engine configuration is missing")

    print(f"{path}: schema OK ({len(configs)} configs, source={doc['source']}, "
          f"full-vs-naive speedup {doc['speedup_full_vs_naive']:.2f}x)")


def diff_history(history_dir: Path, strict: bool) -> int:
    """Compare the two newest entries; returns the number of regressions."""
    entries = sorted(p for p in history_dir.glob("*.json"))
    if len(entries) < 2:
        print(f"{history_dir}: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
              "nothing to diff yet")
        return 0
    prev_path, cur_path = entries[-2], entries[-1]
    prev = {c["name"]: c for c in load(prev_path)["configs"]}
    cur = load(cur_path)["configs"]
    regressions = 0
    for c in cur:
        old = prev.get(c["name"])
        if old is None or old["seconds"] <= 0:
            continue
        ratio = c["seconds"] / old["seconds"]
        if ratio > REGRESSION_THRESHOLD:
            regressions += 1
            print(f"KERNEL REGRESSION: {c['name']} is {ratio:.2f}x the previous "
                  f"entry ({old['seconds']:.3f}s -> {c['seconds']:.3f}s; "
                  f"{prev_path.name} -> {cur_path.name})",
                  file=sys.stderr)
        elif ratio < 1 / REGRESSION_THRESHOLD:
            print(f"kernel speedup: {c['name']} improved {1 / ratio:.2f}x "
                  f"({old['seconds']:.3f}s -> {c['seconds']:.3f}s)")
    if regressions == 0:
        print(f"history diff OK: {prev_path.name} -> {cur_path.name}, "
              f"no config slowed down more than {(REGRESSION_THRESHOLD - 1) * 100:.0f}%")
    elif strict:
        return regressions
    else:
        print(f"({regressions} regression(s) flagged; informational without --strict)",
              file=sys.stderr)
        regressions = 0
    return regressions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", default=None,
                        help="artifact to schema-check (default: BENCH_greedy.json, "
                             "or the newest history entry with --history)")
    parser.add_argument("--history", metavar="DIR", default=None,
                        help="tracked bench-history directory to diff")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on flagged regressions")
    args = parser.parse_args()

    if args.history is None:
        path = args.path or "BENCH_greedy.json"
        validate(load(path), path)
        return

    history_dir = Path(args.history)
    if not history_dir.is_dir():
        fail(f"history directory {history_dir} does not exist")
    if args.path:
        validate(load(args.path), args.path)
    else:
        entries = sorted(history_dir.glob("*.json"))
        if entries:
            validate(load(entries[-1]), entries[-1])
    if diff_history(history_dir, args.strict) > 0:
        sys.exit(2)


if __name__ == "__main__":
    main()
